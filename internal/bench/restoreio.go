package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"sync"

	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/jobs"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

func init() {
	register("restoreio", "Restore I/O layer: ranged-read planner vs full container reads, shared cache vs per-job fetching", runRestoreIO)
}

// Dataset shape: one file of unique (incompressible, dedup-free) data, so
// every container is densely referenced by the full restore and the
// sparse need-sets below come purely from the restore window, not from
// fragmentation. Virtual time and OSS byte counts are fully deterministic.
const (
	rioFileBytes = 4 << 20
	rioWindows   = 4 // scattered windows per sparse measurement
)

// RestoreIOSparsePoint compares one restore shape under the two fetch
// strategies: full container GETs versus the cost-model ranged-read plan.
// All columns are virtual time / modelled OSS traffic — deterministic.
type RestoreIOSparsePoint struct {
	// WindowBytes is the size of each restored window (0 = full restore,
	// the dense control row where the planner must choose full reads).
	WindowBytes  int     `json:"window_bytes"`
	NeedFraction float64 `json:"need_fraction"` // window bytes / container capacity

	FullMS         float64 `json:"full_ms"`
	FullOSSBytes   int64   `json:"full_oss_bytes"`
	RangedMS       float64 `json:"ranged_ms"`
	RangedOSSBytes int64   `json:"ranged_oss_bytes"`
	RangedReads    int     `json:"ranged_reads"`
	RangedSpans    int     `json:"ranged_spans"`

	Speedup       float64 `json:"speedup"`        // full virtual time / ranged virtual time
	ByteReduction float64 `json:"byte_reduction"` // full OSS bytes / ranged OSS bytes
}

// RestoreIOOverlapPoint compares N concurrent restores of the same
// version with and without the node-wide shared cache + singleflight
// layer, counting real GETs and bytes at the base object store.
type RestoreIOOverlapPoint struct {
	Jobs int `json:"jobs"`

	PerJobGets   int   `json:"per_job_gets"`
	PerJobBytes  int64 `json:"per_job_bytes"`
	SharedGets   int   `json:"shared_gets"`
	SharedBytes  int64 `json:"shared_bytes"`
	SharedHits   int64 `json:"shared_hits"`
	SharedJoins  int64 `json:"shared_joins"`
	SharedMisses int64 `json:"shared_misses"`

	GetReduction  float64 `json:"get_reduction"`  // per-job gets / shared gets
	ByteReduction float64 `json:"byte_reduction"` // per-job bytes / shared bytes
}

// RestoreIOReport is the BENCH_restoreio.json schema: the regression
// artifact pinning what the node-level restore I/O layer saves.
type RestoreIOReport struct {
	Experiment     string                  `json:"experiment"`
	FileBytes      int                     `json:"file_bytes"`
	ContainerBytes int                     `json:"container_bytes"`
	Windows        int                     `json:"windows_per_point"`
	Sparse         []RestoreIOSparsePoint  `json:"sparse"`
	Overlap        []RestoreIOOverlapPoint `json:"overlap"`
}

// restoreioOutPath decides where the JSON artifact lands;
// BENCH_RESTOREIO_OUT overrides the default.
func restoreioOutPath() string {
	//slimlint:ignore determinism BENCH_RESTOREIO_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_RESTOREIO_OUT"); p != "" {
		return p
	}
	return "BENCH_restoreio.json"
}

func rioData() []byte {
	data := make([]byte, rioFileBytes)
	rand.New(rand.NewSource(17)).Read(data)
	return data
}

// rioCountingStore counts container data-object traffic at the base
// store, underneath every metered view and cache layer.
type rioCountingStore struct {
	oss.Store
	mu    sync.Mutex
	gets  int
	bytes int64
}

func (s *rioCountingStore) count(key string, n int) {
	if !strings.HasSuffix(key, ".data") {
		return
	}
	s.mu.Lock()
	s.gets++
	s.bytes += int64(n)
	s.mu.Unlock()
}

func (s *rioCountingStore) Get(key string) ([]byte, error) {
	b, err := s.Store.Get(key)
	if err == nil {
		s.count(key, len(b))
	}
	return b, err
}

func (s *rioCountingStore) GetRange(key string, off, n int64) ([]byte, error) {
	b, err := s.Store.GetRange(key, off, n)
	if err == nil {
		s.count(key, len(b))
	}
	return b, err
}

func (s *rioCountingStore) snapshot() (int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gets, s.bytes
}

// rioSparseRun restores the given windows of a fresh single-version repo
// and returns total virtual time (ms), OSS read bytes from the job
// accounts, and the ranged-read counters. window == 0 runs one full
// restore. ranged toggles the planner; the shared cache is disabled so
// the comparison isolates full-GET vs ranged-plan fetching.
func rioSparseRun(data []byte, window int, ranged bool) (ms float64, ossBytes int64, rreads, rspans int, err error) {
	cfg := benchConfig()
	cfg.SharedCacheBytes = -1
	cfg.DisableRangedReads = !ranged
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	n := lnode.New(repo, "L0")
	if _, err := n.Backup("f", data); err != nil {
		return 0, 0, 0, 0, err
	}

	restoreWindow := func(off, length int64) error {
		var buf bytes.Buffer
		var st *lnode.RestoreStats
		if length < 0 {
			st, err = n.Restore("f", 0, &buf)
		} else {
			st, err = n.RestoreRange("f", 0, off, length, &buf)
		}
		if err != nil {
			return err
		}
		end := int64(len(data))
		if length >= 0 {
			end = off + length
		} else {
			off = 0
		}
		if !bytes.Equal(buf.Bytes(), data[off:end]) {
			return fmt.Errorf("restoreio: window [%d,%d) bytes differ from backup input", off, end)
		}
		ms += float64(st.Elapsed.Microseconds()) / 1e3
		ossBytes += st.Account.IO().ReadBytes
		rreads += st.Cache.RangedReads
		rspans += st.Cache.RangedSpans
		return nil
	}

	if window == 0 {
		err = restoreWindow(0, -1)
		return ms, ossBytes, rreads, rspans, err
	}
	for i := 0; i < rioWindows; i++ {
		// Windows at 1/8, 3/8, 5/8, 7/8 of the file: scattered, far apart,
		// not container-aligned.
		off := int64(2*i+1) * int64(len(data)) / (2 * rioWindows)
		if err := restoreWindow(off, int64(window)); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	return ms, ossBytes, rreads, rspans, nil
}

// rioOverlap backs up one file and runs njobs concurrent restores of
// it, returning base-store container traffic for the batch plus the
// shared-cache counters. shared toggles the node-wide cache; every
// restored stream is verified byte-identical to the serial baseline (and
// the baseline to the backup input).
func rioOverlap(ctx context.Context, data []byte, njobs int, shared bool) (gets int, ossBytes int64, stats RestoreIOOverlapPoint, err error) {
	cfg := benchConfig()
	if shared {
		cfg.SharedCacheBytes = 64 << 20
	} else {
		cfg.SharedCacheBytes = -1
	}
	cs := &rioCountingStore{Store: oss.NewMem()}
	repo, err := core.OpenRepo(cs, cfg)
	if err != nil {
		return 0, 0, stats, err
	}
	eng := jobs.New(repo, gnode.New(repo), jobs.Options{LNodes: njobs, Queue: njobs})
	defer eng.Close()

	if res := eng.Run(ctx, []jobs.Job{{Kind: jobs.Backup, FileID: "f", Data: data}}); res[0].Err != nil {
		return 0, 0, stats, res[0].Err
	}

	// Serial twin baseline on a cache-free private repo over the same
	// store: the concurrent outputs below must match it bit for bit.
	baseCfg := cfg
	baseCfg.SharedCacheBytes = -1
	baseRepo, err := core.OpenRepo(cs.Store, baseCfg)
	if err != nil {
		return 0, 0, stats, err
	}
	var baseline bytes.Buffer
	if _, err := lnode.New(baseRepo, "twin").Restore("f", 0, &baseline); err != nil {
		return 0, 0, stats, err
	}
	if !bytes.Equal(baseline.Bytes(), data) {
		return 0, 0, stats, fmt.Errorf("restoreio: serial baseline differs from backup input")
	}

	preGets, preBytes := cs.snapshot()
	bufs := make([]bytes.Buffer, njobs)
	batch := make([]jobs.Job, njobs)
	for i := range batch {
		batch[i] = jobs.Job{Kind: jobs.Restore, FileID: "f", Version: 0, Out: &bufs[i]}
	}
	for i, r := range eng.Run(ctx, batch) {
		if r.Err != nil {
			return 0, 0, stats, fmt.Errorf("restoreio: concurrent restore %d: %w", i, r.Err)
		}
		if !bytes.Equal(bufs[i].Bytes(), baseline.Bytes()) {
			return 0, 0, stats, fmt.Errorf("restoreio: concurrent restore %d differs from serial baseline", i)
		}
	}
	postGets, postBytes := cs.snapshot()

	sc := eng.SharedCacheStats()
	stats.SharedHits = sc.Hits
	stats.SharedJoins = sc.InflightJoins
	stats.SharedMisses = sc.Misses
	return postGets - preGets, postBytes - preBytes, stats, nil
}

// RunRestoreIO runs the sparse (ranged vs full) sweep over windowSizes
// (0 = dense full-restore control) and the overlap (shared vs per-job)
// sweep over jobCounts.
func RunRestoreIO(ctx context.Context, windowSizes []int, jobCounts []int) (*RestoreIOReport, error) {
	cfg := benchConfig()
	rep := &RestoreIOReport{
		Experiment:     "restoreio",
		FileBytes:      rioFileBytes,
		ContainerBytes: cfg.ContainerCapacity,
		Windows:        rioWindows,
	}
	data := rioData()

	for _, w := range windowSizes {
		fullMS, fullBytes, _, _, err := rioSparseRun(data, w, false)
		if err != nil {
			return nil, fmt.Errorf("restoreio: full fetch, window %d: %w", w, err)
		}
		rangedMS, rangedBytes, rreads, rspans, err := rioSparseRun(data, w, true)
		if err != nil {
			return nil, fmt.Errorf("restoreio: ranged fetch, window %d: %w", w, err)
		}
		frac := float64(w) / float64(cfg.ContainerCapacity)
		if w == 0 {
			frac = 1 // full restore needs every chunk of every container
		}
		rep.Sparse = append(rep.Sparse, RestoreIOSparsePoint{
			WindowBytes:    w,
			NeedFraction:   frac,
			FullMS:         fullMS,
			FullOSSBytes:   fullBytes,
			RangedMS:       rangedMS,
			RangedOSSBytes: rangedBytes,
			RangedReads:    rreads,
			RangedSpans:    rspans,
			Speedup:        fullMS / rangedMS,
			ByteReduction:  float64(fullBytes) / float64(rangedBytes),
		})
	}

	for _, n := range jobCounts {
		pjGets, pjBytes, _, err := rioOverlap(ctx, data, n, false)
		if err != nil {
			return nil, fmt.Errorf("restoreio: per-job fetch, %d jobs: %w", n, err)
		}
		shGets, shBytes, pt, err := rioOverlap(ctx, data, n, true)
		if err != nil {
			return nil, fmt.Errorf("restoreio: shared fetch, %d jobs: %w", n, err)
		}
		pt.Jobs = n
		pt.PerJobGets, pt.PerJobBytes = pjGets, pjBytes
		pt.SharedGets, pt.SharedBytes = shGets, shBytes
		pt.GetReduction = float64(pjGets) / float64(shGets)
		pt.ByteReduction = float64(pjBytes) / float64(shBytes)
		rep.Overlap = append(rep.Overlap, pt)
	}
	return rep, nil
}

// runRestoreIO is the registered experiment: it prints both sweeps and
// writes the BENCH_restoreio.json regression artifact (path via
// BENCH_RESTOREIO_OUT).
func runRestoreIO(ctx context.Context, w io.Writer, _ Scale) error {
	rep, err := RunRestoreIO(ctx, []int{16 << 10, 64 << 10, 256 << 10, 0}, []int{2, 4, 8})
	if err != nil {
		return err
	}

	t := newTable(w, "Ranged-read planner: sparse restore windows, full-GET vs planned spans (virtual time)")
	t.row("window", "need frac", "full ms", "ranged ms", "speedup", "full MiB", "ranged MiB", "byte redux", "spans")
	for _, p := range rep.Sparse {
		name := "full file"
		if p.WindowBytes > 0 {
			name = fmt.Sprintf("%d KiB", p.WindowBytes>>10)
		}
		t.row(name, f2(p.NeedFraction), f1(p.FullMS), f1(p.RangedMS), f2(p.Speedup),
			f2(float64(p.FullOSSBytes)/(1<<20)), f2(float64(p.RangedOSSBytes)/(1<<20)),
			f2(p.ByteReduction), fmt.Sprint(p.RangedSpans))
	}
	t.flush()

	t = newTable(w, "Shared cache + singleflight: N concurrent restores of one version (base-store traffic)")
	t.row("jobs", "per-job GETs", "shared GETs", "GET redux", "per-job MiB", "shared MiB", "byte redux", "hits", "joins")
	for _, p := range rep.Overlap {
		t.row(fmt.Sprint(p.Jobs),
			fmt.Sprint(p.PerJobGets), fmt.Sprint(p.SharedGets), f2(p.GetReduction),
			f2(float64(p.PerJobBytes)/(1<<20)), f2(float64(p.SharedBytes)/(1<<20)), f2(p.ByteReduction),
			fmt.Sprint(p.SharedHits), fmt.Sprint(p.SharedJoins))
	}
	t.flush()

	out := restoreioOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}
