package bench

import (
	"encoding/json"
	"testing"
	"time"
)

// TestGMaintRegression is the wall-clock perf gate for parallel G-node
// maintenance. The injected per-op OSS latency makes the sweep
// latency-bound, so the speedup assertions hold on any host — including
// a single core, where goroutines overlap timer sleeps just as parallel
// request channels overlap network round-trips. The floors are
// conservative: 4 workers over ~250-op serial passes measure ~3x.
func TestGMaintRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow bench sweep")
	}
	rep, err := RunGMaint([]int{1, 4}, 250*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	one, four := rep.Points[0], rep.Points[1]

	// Parallelism must not change the work: every stats column is
	// bit-identical across worker counts.
	if one.ChunksScanned != four.ChunksScanned || one.DupsRemoved != four.DupsRemoved ||
		one.IndexInserts != four.IndexInserts || one.Rewritten != four.Rewritten ||
		one.ChunksVerified != four.ChunksVerified || one.ScrubContainers != four.ScrubContainers {
		t.Fatalf("work diverges between 1 and 4 workers:\n1: %+v\n4: %+v", one, four)
	}
	// And the pass must have done substantial work of every kind, or the
	// timing below measures nothing.
	if one.DupsRemoved == 0 || one.Rewritten == 0 || one.IndexInserts == 0 || one.ChunksVerified == 0 {
		t.Fatalf("degenerate dataset: %+v", one)
	}

	if four.ReverseSpeedup < 2.0 {
		t.Errorf("reverse dedup speedup at 4 workers = %.2fx (1w %.1fms, 4w %.1fms), want >= 2.0x",
			four.ReverseSpeedup, one.ReverseWallMS, four.ReverseWallMS)
	}
	if four.ScrubSpeedup < 1.3 {
		t.Errorf("scrub speedup at 4 workers = %.2fx (1w %.1fms, 4w %.1fms), want >= 1.3x",
			four.ScrubSpeedup, one.ScrubWallMS, four.ScrubWallMS)
	}
}
