package bench

import (
	"context"
	"fmt"
	"io"
	"sync"

	"slimstore/internal/baseline"
	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
	"slimstore/internal/workload"
)

func init() {
	register("fig10a", "Fig 10(a): backup throughput scaling vs Restic", runFig10a)
	register("fig10b", "Fig 10(b): restore throughput scaling vs Restic", runFig10b)
	register("fig10c", "Fig 10(c): occupied space vs Restic", runFig10c)
}

// Jobs-per-node capacities from §VII-E: up to ~12 backup jobs and 8
// restore jobs per L-node before another node is allocated.
const (
	backupJobsPerNode  = 12
	restoreJobsPerNode = 8
)

// fig10Config is the §VII-E SLIMSTORE setup: 256 KiB initial chunks,
// merging up to 2 MiB.
func fig10Config() core.Config {
	cfg := benchConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(256 << 10)
	cfg.MaxSuperChunkBytes = 2 << 20
	cfg.ContainerCapacity = 8 << 20
	cfg.SegmentChunks = 64
	cfg.PrefetchThreads = 2
	return cfg
}

// fig10Gen picks an R-Data-profile dataset with `files` files at half the
// scale's file size (fig 10 sweeps many concurrent jobs).
func fig10Gen(s Scale, files int) *workload.Generator {
	return workload.New(workload.RData(files, s.FileBytes/2))
}

func runFig10a(ctx context.Context, w io.Writer, s Scale) error {
	jobCounts := []int{1, 2, 4, 8, 16, 24}
	totalFiles := 0
	for _, j := range jobCounts {
		totalFiles += j
	}
	gen := fig10Gen(s, totalFiles)
	costs := simclock.DefaultCosts()

	// Seed version 0 of every file on both systems; each concurrency
	// round then measures first-time incremental backups of fresh files,
	// so rounds are comparable.
	repo, err := core.OpenRepo(oss.NewMem(), fig10Config())
	if err != nil {
		return err
	}
	ln := lnode.New(repo, "L0")
	restic, err := baseline.NewRestic(oss.NewMem(), costs, chunker.ParamsForAvg(1<<20), 16<<20)
	if err != nil {
		return err
	}
	for i := 0; i < len(gen.FileIDs()); i++ {
		base := gen.Base(i)
		if _, err := ln.Backup(gen.FileIDs()[i], base); err != nil {
			return err
		}
		if _, err := restic.Backup(gen.FileIDs()[i], base); err != nil {
			return err
		}
	}

	t := newTable(w, "Fig 10(a): aggregate backup throughput (MB/s) vs concurrent jobs")
	t.row("jobs", "l-nodes", "slimstore", "restic", "slim/restic")
	offset := 0
	for _, jobs := range jobCounts {
		// SLIMSTORE: jobs are independent (stateless L-nodes, no shared
		// bottleneck) — aggregate throughput is the sum of per-job rates.
		var mu sync.Mutex
		var wg sync.WaitGroup
		var slimSum float64
		errs := make([]error, jobs)
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				fi := offset + j
				data := gen.Version(fi, 1)
				st, err := ln.Backup(gen.FileIDs()[fi], data)
				if err != nil {
					errs[j] = err
					return
				}
				mu.Lock()
				slimSum += st.ThroughputMBps()
				mu.Unlock()
			}(j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}

		// Restic: per-job rates sum too, but the single shared index
		// serialises — aggregate is capped at totalBytes / serialised
		// index time.
		lockBefore := restic.LockAccount().CPUTime()
		var resticSum float64
		var resticBytes int64
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				fi := offset + j
				data := gen.Version(fi, 1)
				r, err := restic.Backup(gen.FileIDs()[fi], data)
				if err != nil {
					errs[j] = err
					return
				}
				mu.Lock()
				resticSum += r.ThroughputMBps()
				resticBytes += r.LogicalBytes
				mu.Unlock()
			}(j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		lockTime := restic.LockAccount().CPUTime() - lockBefore
		if cap := simclock.ThroughputMBps(resticBytes, lockTime); cap < resticSum {
			resticSum = cap
		}
		offset += jobs

		nodes := (jobs + backupJobsPerNode - 1) / backupJobsPerNode
		t.row(fmt.Sprint(jobs), fmt.Sprint(nodes), f1(slimSum), f1(resticSum),
			f2(slimSum/resticSum))
	}
	t.flush()
	return nil
}

func runFig10b(ctx context.Context, w io.Writer, s Scale) error {
	jobCounts := []int{1, 2, 4, 8, 16, 24}
	gen := fig10Gen(s, jobCounts[len(jobCounts)-1])
	costs := simclock.DefaultCosts()

	repo, err := core.OpenRepo(oss.NewMem(), fig10Config())
	if err != nil {
		return err
	}
	ln := lnode.New(repo, "L0")
	restic, err := baseline.NewRestic(oss.NewMem(), costs, chunker.ParamsForAvg(1<<20), 16<<20)
	if err != nil {
		return err
	}
	for i := 0; i < len(gen.FileIDs()); i++ {
		data := gen.Base(i)
		if _, err := ln.Backup(gen.FileIDs()[i], data); err != nil {
			return err
		}
		if _, err := restic.Backup(gen.FileIDs()[i], data); err != nil {
			return err
		}
	}

	t := newTable(w, "Fig 10(b): aggregate restore throughput (MB/s) vs concurrent jobs")
	t.row("jobs", "l-nodes", "slimstore", "restic", "slim/restic")
	for _, jobs := range jobCounts {
		var mu sync.Mutex
		var wg sync.WaitGroup
		var slimSum float64
		errs := make([]error, jobs)
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				st, err := ln.Restore(gen.FileIDs()[j%len(gen.FileIDs())], 0, io.Discard)
				if err != nil {
					errs[j] = err
					return
				}
				mu.Lock()
				slimSum += st.ThroughputMBps()
				mu.Unlock()
			}(j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}

		lockBefore := restic.LockAccount().CPUTime()
		var resticSum float64
		var resticBytes int64
		for j := 0; j < jobs; j++ {
			wg.Add(1)
			go func(j int) {
				defer wg.Done()
				rr, err := restic.Restore(gen.FileIDs()[j%len(gen.FileIDs())], 0, func([]byte) error { return nil })
				if err != nil {
					errs[j] = err
					return
				}
				mu.Lock()
				resticSum += simclock.ThroughputMBps(rr.Bytes, rr.Elapsed)
				resticBytes += rr.Bytes
				mu.Unlock()
			}(j)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		lockTime := restic.LockAccount().CPUTime() - lockBefore
		if cap := simclock.ThroughputMBps(resticBytes, lockTime); cap < resticSum {
			resticSum = cap
		}

		nodes := (jobs + restoreJobsPerNode - 1) / restoreJobsPerNode
		t.row(fmt.Sprint(jobs), fmt.Sprint(nodes), f1(slimSum), f1(resticSum),
			f2(slimSum/resticSum))
	}
	t.flush()
	return nil
}

func runFig10c(ctx context.Context, w io.Writer, s Scale) error {
	versions := clampVersions(s, 13)
	gen := workload.New(workload.RData(s.Files*2, s.FileBytes))
	costs := simclock.DefaultCosts()

	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, fig10Config())
	if err != nil {
		return err
	}
	ln := lnode.New(repo, "L0")
	gn := gnode.New(repo)

	resticMem := oss.NewMem()
	restic, err := baseline.NewRestic(resticMem, costs, chunker.ParamsForAvg(1<<20), 16<<20)
	if err != nil {
		return err
	}

	// Phase 1: online backups only (L-dedupe space).
	pending := make(map[string][]*lnode.BackupStats)
	for i := 0; i < len(gen.FileIDs()); i++ {
		fileID := gen.FileIDs()[i]
		err := gen.VersionSeq(i, func(v int, data []byte) error {
			if v >= versions {
				return errDone
			}
			st, err := ln.Backup(fileID, data)
			if err != nil {
				return err
			}
			pending[fileID] = append(pending[fileID], st)
			_, err = restic.Backup(fileID, data)
			return err
		})
		if err != nil && err != errDone {
			return err
		}
	}
	slimNoG := mem.BytesWithPrefix("containers/")

	// Phase 2: the offline G-node pass (the shaded part of Fig 10c).
	for _, fileID := range gen.FileIDs() {
		for _, st := range pending[fileID] {
			if _, err := gn.ReverseDedup(st.NewContainers); err != nil {
				return err
			}
			if _, err := gn.CompactSparse(fileID, st.Version, st.SparseContainers); err != nil {
				return err
			}
		}
	}
	slimFinal := mem.BytesWithPrefix("containers/")
	resticFinal := resticMem.BytesWithPrefix("containers/")

	t := newTable(w, "Fig 10(c): occupied container space (R-Data)")
	t.row("system", "space", "vs restic")
	t.row("restic (1MB chunks)", mib(resticFinal), "1.00")
	t.row("slimstore (L-dedupe)", mib(slimNoG), f2(float64(slimNoG)/float64(resticFinal)))
	t.row("slimstore (+G-dedupe)", mib(slimFinal), f2(float64(slimFinal)/float64(resticFinal)))
	t.flush()
	fmt.Fprintf(w, "reverse dedup further reduced space by %s\n",
		pct(1-float64(slimFinal)/float64(max64(slimNoG, 1))))
	return nil
}
