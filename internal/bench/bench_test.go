package bench

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"slimstore/internal/workload"
)

// tinyScale keeps the full experiment suite runnable in CI time.
var tinyScale = Scale{Files: 2, FileBytes: 1 << 20, Versions: 4}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure from the paper's evaluation must be present.
	want := []string{
		"table1", "table2",
		"fig2", "fig5a", "fig5b", "fig5c", "fig5d",
		"fig6a", "fig6b", "fig7a", "fig7b",
		"fig8ab", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig10a", "fig10b", "fig10c",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if _, ok := ByID("fig5a"); !ok {
		t.Error("ByID(fig5a) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
	if len(IDs()) != len(All()) {
		t.Error("IDs and All disagree")
	}
}

// TestAllExperimentsRun executes every experiment at tiny scale: they must
// complete without error and produce non-trivial output.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			// Artifact-writing experiments honour BENCH_<EXP>_OUT; point
			// them at a temp dir so test runs never litter the package
			// directory (or dirty a checkout) with regenerated JSON.
			t.Setenv("BENCH_GMAINT_OUT", filepath.Join(t.TempDir(), "gmaint.json"))
			t.Setenv("BENCH_RESTOREIO_OUT", filepath.Join(t.TempDir(), "restoreio.json"))
			t.Setenv("BENCH_REPL_OUT", filepath.Join(t.TempDir(), "repl.json"))
			t.Setenv("BENCH_EC_OUT", filepath.Join(t.TempDir(), "ec.json"))
			t.Setenv("BENCH_INGEST_OUT", filepath.Join(t.TempDir(), "ingest.json"))
			var buf bytes.Buffer
			if err := e.Run(context.Background(), &buf, tinyScale); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 || !strings.Contains(out, "==") {
				t.Fatalf("%s: suspicious output:\n%s", e.ID, out)
			}
		})
	}
}

// TestFig5aShape asserts the headline property of Fig 5(a): skip chunking
// accelerates both CDC algorithms, with the bigger gain for Rabin.
func TestFig5aShape(t *testing.T) {
	gen := workload.New(workload.SDB(2, 16<<20))
	// File 1 of 2 has the band's high duplication ratio (0.95), the
	// regime where Fig 5's gains are clearest.
	rabin, err := fig5Run(gen, 1, "rabin", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	rabinSkip, err := fig5Run(gen, 1, "rabin", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := fig5Run(gen, 1, "fastcdc", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	fastSkip, err := fig5Run(gen, 1, "fastcdc", 4, true)
	if err != nil {
		t.Fatal(err)
	}
	rGain := rabinSkip.ThroughputMBps() / rabin.ThroughputMBps()
	fGain := fastSkip.ThroughputMBps() / fast.ThroughputMBps()
	if rGain < 1.3 {
		t.Errorf("rabin skip gain %.2f, want >= 1.3 (paper: ~2x)", rGain)
	}
	if fGain < 1.15 {
		t.Errorf("fastcdc skip gain %.2f, want >= 1.15 (paper: ~1.5x)", fGain)
	}
	if rGain < fGain {
		t.Errorf("rabin gain %.2f should exceed fastcdc gain %.2f", rGain, fGain)
	}
	// Fig 5(b): ratio unchanged by skip chunking.
	if d := rabinSkip.DedupRatio() - rabin.DedupRatio(); d < -0.005 || d > 0.005 {
		t.Errorf("skip chunking changed rabin dedup ratio by %.4f", d)
	}
}
