package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"slimstore/internal/baseline"
	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
	"slimstore/internal/workload"
)

func init() {
	register("table1", "Table I: The characteristics of dataset", runTable1)
	register("fig2", "Fig 2: CPU and network time breakdown of CDC", runFig2)
	register("fig5a", "Fig 5(a): Throughput vs chunk size (skip chunking)", runFig5a)
	register("fig5b", "Fig 5(b): Deduplication ratio vs chunk size (skip chunking)", runFig5b)
	register("fig5c", "Fig 5(c): Throughput vs file characteristics (skip chunking)", runFig5c)
	register("fig5d", "Fig 5(d): CPU time breakdown with skip chunking", runFig5d)
	register("fig6a", "Fig 6(a): Throughput & avg chunk size (chunk merging)", runFig6a)
	register("fig6b", "Fig 6(b): Deduplication ratio (chunk merging)", runFig6b)
	register("fig7a", "Fig 7(a): Dedup throughput vs SiLO / Sparse Indexing", runFig7a)
	register("fig7b", "Fig 7(b): Dedup ratio vs SiLO / Sparse Indexing", runFig7b)
}

// backupSeries runs `versions` backups of one workload file under cfg on a
// fresh repo, returning per-version stats.
func backupSeries(cfg core.Config, gen *workload.Generator, fileIdx, versions int) ([]*lnode.BackupStats, error) {
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		return nil, err
	}
	ln := lnode.New(repo, "L0")
	var out []*lnode.BackupStats
	fileID := gen.FileIDs()[fileIdx]
	err = gen.VersionSeq(fileIdx, func(v int, data []byte) error {
		if v >= versions {
			return errDone
		}
		st, err := ln.Backup(fileID, data)
		if err != nil {
			return err
		}
		out = append(out, st)
		return nil
	})
	if err != nil && err != errDone {
		return nil, err
	}
	return out, nil
}

var errDone = fmt.Errorf("done")

// ---------------------------------------------------------------------------

func runTable1(ctx context.Context, w io.Writer, s Scale) error {
	t := newTable(w, "Table I: dataset characteristics (scaled)")
	t.row("dataset", "total size", "# versions", "# files", "avg dup ratio", "self-reference")
	for _, spec := range []workload.Spec{
		workload.SDB(s.Files, s.FileBytes),
		workload.RData(s.Files, s.FileBytes),
	} {
		g := workload.New(spec)
		st := g.Stats()
		t.row(st.Name, gib(st.TotalBytes), fmt.Sprint(st.Versions), fmt.Sprint(st.Files),
			f2(st.MeanDup), pct(st.SelfRef))
	}
	t.flush()
	// Validate the generator against its targets on one file.
	g := workload.New(workload.SDB(s.Files, s.FileBytes))
	fmt.Fprintf(w, "generator check: file 0 target dup %.2f, measured %.2f\n",
		g.FileDupRatio(0), g.MeasureDup(0, 1))
	return nil
}

func runFig2(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 5)
	t := newTable(w, "Fig 2: CPU & network time breakdown (no skip chunking)")
	t.row("algo", "ver", "chunking", "fingerprint", "index", "other", "cpu(ms)", "net(ms)", "bottleneck")
	for _, algo := range []string{"rabin", "fastcdc"} {
		cfg := benchConfig()
		cfg.ChunkAlgo = algo
		cfg.SkipChunking = false
		cfg.ChunkMerging = false
		stats, err := backupSeries(cfg, gen, s.Files/2, versions)
		if err != nil {
			return err
		}
		for v, st := range stats {
			br := st.Account.CPUBreakdown()
			cpu := st.Account.CPUTime()
			io := st.Account.IO()
			net := io.ReadTime + io.WriteTime
			bn := "CPU"
			if net > cpu {
				bn = "network"
			}
			t.row(algo, fmt.Sprint(v),
				pct(br[simclock.PhaseChunking]), pct(br[simclock.PhaseFingerprint]),
				pct(br[simclock.PhaseIndexQuery]), pct(br[simclock.PhaseOther]),
				f1(float64(cpu)/float64(time.Millisecond)),
				f1(float64(net)/float64(time.Millisecond)), bn)
		}
	}
	t.flush()
	return nil
}

// fig5Run measures version-1 dedup under one (algo, chunkKB, skip) cell.
func fig5Run(gen *workload.Generator, fileIdx int, algo string, chunkKB int, skip bool) (*lnode.BackupStats, error) {
	cfg := benchConfig()
	cfg.ChunkAlgo = algo
	cfg.ChunkParams = chunker.ParamsForAvg(chunkKB << 10)
	cfg.SkipChunking = skip
	cfg.ChunkMerging = false
	stats, err := backupSeries(cfg, gen, fileIdx, 2)
	if err != nil {
		return nil, err
	}
	return stats[len(stats)-1], nil
}

var fig5ChunkKBs = []int{4, 8, 16, 32, 64}

func runFig5a(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	t := newTable(w, "Fig 5(a): dedup throughput (MB/s) vs chunk size")
	t.row("chunk", "rabin", "rabin+skip", "fastcdc", "fastcdc+skip")
	for _, kb := range fig5ChunkKBs {
		cells := []string{fmt.Sprintf("%dKB", kb)}
		for _, algo := range []string{"rabin", "fastcdc"} {
			for _, skip := range []bool{false, true} {
				st, err := fig5Run(gen, s.Files/2, algo, kb, skip)
				if err != nil {
					return err
				}
				cells = append(cells, f1(st.ThroughputMBps()))
			}
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

func runFig5b(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	t := newTable(w, "Fig 5(b): dedup ratio vs chunk size")
	t.row("chunk", "rabin", "rabin+skip", "fastcdc", "fastcdc+skip")
	for _, kb := range fig5ChunkKBs {
		cells := []string{fmt.Sprintf("%dKB", kb)}
		for _, algo := range []string{"rabin", "fastcdc"} {
			for _, skip := range []bool{false, true} {
				st, err := fig5Run(gen, s.Files/2, algo, kb, skip)
				if err != nil {
					return err
				}
				cells = append(cells, pct(st.DedupRatio()))
			}
		}
		t.row(cells...)
	}
	t.flush()
	return nil
}

func runFig5c(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	t := newTable(w, "Fig 5(c): throughput (MB/s) vs file duplication ratio")
	t.row("file dup", "fastcdc", "fastcdc+skip", "speedup")
	for i := 0; i < s.Files; i++ {
		plain, err := fig5Run(gen, i, "fastcdc", 4, false)
		if err != nil {
			return err
		}
		skip, err := fig5Run(gen, i, "fastcdc", 4, true)
		if err != nil {
			return err
		}
		t.row(f2(gen.FileDupRatio(i)), f1(plain.ThroughputMBps()), f1(skip.ThroughputMBps()),
			f2(skip.ThroughputMBps()/plain.ThroughputMBps()))
	}
	t.flush()
	return nil
}

func runFig5d(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	t := newTable(w, "Fig 5(d): CPU breakdown with skip chunking (version 1)")
	t.row("algo", "chunking", "fingerprint", "index", "other", "skip hits", "skip misses")
	for _, algo := range []string{"rabin", "fastcdc"} {
		st, err := fig5Run(gen, s.Files/2, algo, 4, true)
		if err != nil {
			return err
		}
		br := st.Account.CPUBreakdown()
		t.row(algo,
			pct(br[simclock.PhaseChunking]), pct(br[simclock.PhaseFingerprint]),
			pct(br[simclock.PhaseIndexQuery]), pct(br[simclock.PhaseOther]),
			fmt.Sprint(st.SkipHits), fmt.Sprint(st.SkipMisses))
	}
	t.flush()
	return nil
}

// fig6Run backs up enough versions to trigger merging and returns the
// last version's stats under merge on/off.
func fig6Run(gen *workload.Generator, fileIdx, versions int, merge bool) (*lnode.BackupStats, error) {
	cfg := benchConfig()
	cfg.ChunkMerging = merge
	stats, err := backupSeries(cfg, gen, fileIdx, versions)
	if err != nil {
		return nil, err
	}
	return stats[len(stats)-1], nil
}

func runFig6a(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 9)
	t := newTable(w, "Fig 6(a): chunk-merging throughput & avg chunk size (final version)")
	t.row("file dup", "no-merge MB/s", "merge MB/s", "gain", "avg chunk (merge)")
	for i := 0; i < s.Files; i++ {
		off, err := fig6Run(gen, i, versions, false)
		if err != nil {
			return err
		}
		on, err := fig6Run(gen, i, versions, true)
		if err != nil {
			return err
		}
		avg := int64(0)
		if on.NumChunks > 0 {
			avg = on.LogicalBytes / int64(on.NumChunks)
		}
		t.row(f2(gen.FileDupRatio(i)), f1(off.ThroughputMBps()), f1(on.ThroughputMBps()),
			f2(on.ThroughputMBps()/off.ThroughputMBps()), fmt.Sprintf("%dKB", avg>>10))
	}
	t.flush()
	return nil
}

func runFig6b(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 9)
	t := newTable(w, "Fig 6(b): chunk-merging dedup ratio (final version)")
	t.row("file dup", "no-merge", "merge", "ratio loss")
	for i := 0; i < s.Files; i++ {
		off, err := fig6Run(gen, i, versions, false)
		if err != nil {
			return err
		}
		on, err := fig6Run(gen, i, versions, true)
		if err != nil {
			return err
		}
		t.row(f2(gen.FileDupRatio(i)), pct(off.DedupRatio()), pct(on.DedupRatio()),
			pct(off.DedupRatio()-on.DedupRatio()))
	}
	t.flush()
	return nil
}

// runFig7 drives SLIMSTORE, SiLO and Sparse Indexing over the same
// version sequence and reports per-version aggregate throughput and ratio.
func runFig7(w io.Writer, s Scale, metric string) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 25)
	costs := simclock.DefaultCosts()
	params := chunker.ParamsForAvg(4 << 10)

	// SLIMSTORE.
	cfg := benchConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		return err
	}
	ln := lnode.New(repo, "L0")

	silo, err := baseline.NewSiLO(oss.NewMem(), costs, params, cfg.ContainerCapacity)
	if err != nil {
		return err
	}
	si, err := baseline.NewSparseIndexing(oss.NewMem(), costs, params, cfg.ContainerCapacity)
	if err != nil {
		return err
	}

	type row struct {
		slim, silo, si    float64 // MB/s
		slimR, siloR, siR float64 // dedup ratio
	}
	rows := make([]row, versions)
	for i := 0; i < s.Files; i++ {
		fileID := gen.FileIDs()[i]
		err := gen.VersionSeq(i, func(v int, data []byte) error {
			if v >= versions {
				return errDone
			}
			st, err := ln.Backup(fileID, data)
			if err != nil {
				return err
			}
			r1, err := silo.Backup(fileID, data)
			if err != nil {
				return err
			}
			r2, err := si.Backup(fileID, data)
			if err != nil {
				return err
			}
			rows[v].slim += st.ThroughputMBps()
			rows[v].silo += r1.ThroughputMBps()
			rows[v].si += r2.ThroughputMBps()
			rows[v].slimR += st.DedupRatio()
			rows[v].siloR += r1.DedupRatio()
			rows[v].siR += r2.DedupRatio()
			return nil
		})
		if err != nil && err != errDone {
			return err
		}
	}
	n := float64(s.Files)
	if metric == "throughput" {
		t := newTable(w, "Fig 7(a): dedup throughput (MB/s, avg per job) across versions")
		t.row("ver", "slimstore", "silo", "sparse-idx", "vs silo", "vs sparse-idx")
		for v := 0; v < versions; v++ {
			r := rows[v]
			t.row(fmt.Sprint(v), f1(r.slim/n), f1(r.silo/n), f1(r.si/n),
				f2(r.slim/r.silo), f2(r.slim/r.si))
		}
		t.flush()
	} else {
		t := newTable(w, "Fig 7(b): dedup ratio across versions")
		t.row("ver", "slimstore", "silo", "sparse-idx")
		for v := 0; v < versions; v++ {
			r := rows[v]
			t.row(fmt.Sprint(v), pct(r.slimR/n), pct(r.siloR/n), pct(r.siR/n))
		}
		t.flush()
	}
	return nil
}

func runFig7a(ctx context.Context, w io.Writer, s Scale) error { return runFig7(w, s, "throughput") }
func runFig7b(ctx context.Context, w io.Writer, s Scale) error { return runFig7(w, s, "ratio") }
