package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
	"slimstore/internal/workload"
)

func init() {
	register("ingest", "Ingest fast path: wall and virtual throughput, allocations, streaming residency by worker count", runIngest)
}

// IngestPoint is one row of the ingest sweep: one worker count, measured
// on the legacy materialize-everything pipeline and the pooled fast path,
// over all-unique data (the hash/write-bound worst case).
type IngestPoint struct {
	Workers int `json:"workers"`

	Bytes  int64 `json:"bytes"`
	Chunks int   `json:"chunks"`

	LegacyWallMS      float64 `json:"legacy_wall_ms"`
	LegacyWallMBps    float64 `json:"legacy_wall_mbps"`
	LegacyVirtualMBps float64 `json:"legacy_virtual_mbps"`

	FastWallMS      float64 `json:"fast_wall_ms"`
	FastWallMBps    float64 `json:"fast_wall_mbps"`
	FastVirtualMBps float64 `json:"fast_virtual_mbps"`

	// Heap mallocs per chunk over the whole backup (containers, recipes
	// and index included), a coarse allocation-pressure signal.
	LegacyMallocsPerChunk float64 `json:"legacy_mallocs_per_chunk"`
	FastMallocsPerChunk   float64 `json:"fast_mallocs_per_chunk"`

	// Dedup equivalence check: both pipelines must store identical bytes
	// in identical chunk counts.
	StoredBytesMatch bool `json:"stored_bytes_match"`
}

// IngestStream is the streaming-ingest row: BackupStream over a synthetic
// unique stream several times the pipeline window.
type IngestStream struct {
	Bytes        int64   `json:"bytes"`
	WallMS       float64 `json:"wall_ms"`
	WallMBps     float64 `json:"wall_mbps"`
	VirtualMBps  float64 `json:"virtual_mbps"`
	PeakHeapMiB  float64 `json:"peak_heap_mib"`
	InputOverRes float64 `json:"input_over_resident"` // stream size / peak heap
}

// IngestReport is the BENCH_ingest.json schema: the regression artifact
// pinning the fast path's advantage over the legacy ingest pipeline.
type IngestReport struct {
	Experiment string `json:"experiment"`
	FileBytes  int    `json:"file_bytes"`
	// HostCPUs contextualises the wall columns: on few-core hosts the wall
	// advantage is bounded by core count while the virtual pipeline model
	// still shows the scaling shape.
	HostCPUs int           `json:"host_cpus"`
	Points   []IngestPoint `json:"points"`

	// Steady-state hand-off allocations per pass (chunk→hash→ring for
	// fast; SplitAll+spawned workers for legacy) — the
	// TestIngestHandoffAllocs quantity, reproduced here for the artifact.
	HandoffLegacyAllocs float64 `json:"handoff_legacy_allocs"`
	HandoffFastAllocs   float64 `json:"handoff_fast_allocs"`

	Stream IngestStream `json:"stream"`
}

// ingestOutPath decides where the JSON artifact lands; BENCH_INGEST_OUT
// overrides the default (BENCH_ingest.json in the working directory).
func ingestOutPath() string {
	//slimlint:ignore determinism BENCH_INGEST_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_INGEST_OUT"); p != "" {
		return p
	}
	return "BENCH_ingest.json"
}

// ingestVirtual composes the virtual elapsed time of the fast pipeline
// from the account's phase totals: the serial cutter, the fingerprint
// pool (W-way), the serial dedup-lookup stage, and the pack stage
// (packW-way write channels, as in the engine-scale model) overlap; the
// slowest stage is the pipeline's period.
func ingestVirtual(acct *simclock.Account, hashW, packW int) time.Duration {
	if hashW < 1 {
		hashW = 1
	}
	if packW < 1 {
		packW = 1
	}
	io := acct.IO()
	stages := []time.Duration{
		acct.CPUPhase(simclock.PhaseChunking),
		acct.CPUPhase(simclock.PhaseFingerprint) / time.Duration(hashW),
		acct.CPUPhase(simclock.PhaseIndexQuery) + acct.CPUPhase(simclock.PhaseOther),
		io.WriteTime / time.Duration(packW),
		io.ReadTime,
	}
	var max time.Duration
	for _, s := range stages {
		if s > max {
			max = s
		}
	}
	return max
}

// ingestBackup runs one fresh-repo unique-data backup and returns its
// stats plus heap mallocs consumed by the run.
func ingestBackup(cfg core.Config, data []byte) (*lnode.BackupStats, uint64, error) {
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		return nil, 0, err
	}
	n := lnode.New(repo, "L0")
	defer n.Close()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	st, err := n.Backup("ingest", data)
	runtime.ReadMemStats(&after)
	if err != nil {
		return nil, 0, err
	}
	return st, after.Mallocs - before.Mallocs, nil
}

// allocsPerRun measures heap allocations per call of f, GC pinned so
// pool contents survive the measurement (the bench counterpart of
// testing.AllocsPerRun, usable outside tests).
func allocsPerRun(runs int, f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	f() // warm up pools and goroutine caches
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// ingestConfig is benchConfig with history-aware accelerations off (the
// fast-path regime) and worker counts pinned per point.
func ingestConfig(workers int, legacy bool) core.Config {
	cfg := benchConfig()
	cfg.SkipChunking = false
	cfg.ChunkMerging = false
	cfg.HashWorkers = workers
	cfg.PackWorkers = workers
	cfg.LegacyIngest = legacy
	return cfg
}

// ingestRand yields a deterministic pseudo-random stream (splitmix64).
type ingestRand struct{ state uint64 }

func (r *ingestRand) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		r.state += 0x9e3779b97f4a7c15
		z := r.state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e9b5
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		for j := 0; j < 8 && i+j < len(p); j++ {
			p[i+j] = byte(z >> (8 * uint(j)))
		}
	}
	return len(p), nil
}

// discardDataStore drops container payloads on write and delegates
// everything else, so the streaming-residency row measures the pipeline
// window rather than the in-memory OSS accumulating the whole stream.
type discardDataStore struct{ oss.Store }

func (s discardDataStore) Put(key string, data []byte) error {
	if strings.HasPrefix(key, container.Prefix) && strings.HasSuffix(key, ".data") {
		return nil
	}
	return s.Store.Put(key, data)
}

// heapPeakReader samples live heap every 16 MiB of stream read.
type heapPeakReader struct {
	inner io.Reader
	since int64
	peak  uint64
}

func (h *heapPeakReader) Read(p []byte) (int, error) {
	n, err := h.inner.Read(p)
	h.since += int64(n)
	if h.since >= 16<<20 {
		h.since = 0
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > h.peak {
			h.peak = ms.HeapAlloc
		}
	}
	return n, err
}

// RunIngest measures legacy vs fast ingest over workerCounts on one
// all-unique file of fileBytes, plus the steady-state hand-off allocation
// comparison and a streaming-residency row over streamBytes.
func RunIngest(ctx context.Context, workerCounts []int, fileBytes int, streamBytes int64) (*IngestReport, error) {
	rep := &IngestReport{
		Experiment: "ingest",
		FileBytes:  fileBytes,
		HostCPUs:   runtime.NumCPU(),
	}
	gen := workload.New(workload.RData(1, fileBytes))
	data := gen.Base(0)

	for _, w := range workerCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt := IngestPoint{Workers: w, Bytes: int64(len(data))}

		//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host ingest speed next to the virtual model
		start := time.Now()
		lst, lMallocs, err := ingestBackup(ingestConfig(w, true), data)
		//slimlint:ignore determinism wall-clock is the measured quantity here
		lWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("ingest: legacy backup (w=%d): %w", w, err)
		}

		//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host ingest speed next to the virtual model
		start = time.Now()
		fst, fMallocs, err := ingestBackup(ingestConfig(w, false), data)
		//slimlint:ignore determinism wall-clock is the measured quantity here
		fWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("ingest: fast backup (w=%d): %w", w, err)
		}

		pt.Chunks = fst.NumChunks
		pt.LegacyWallMS = float64(lWall.Microseconds()) / 1e3
		pt.LegacyWallMBps = simclock.ThroughputMBps(lst.LogicalBytes, lWall)
		// The legacy pipeline materializes every chunk before the first
		// lookup: its virtual time is the serial composition the stats
		// already report.
		pt.LegacyVirtualMBps = simclock.ThroughputMBps(lst.LogicalBytes, lst.Elapsed)
		pt.FastWallMS = float64(fWall.Microseconds()) / 1e3
		pt.FastWallMBps = simclock.ThroughputMBps(fst.LogicalBytes, fWall)
		pt.FastVirtualMBps = simclock.ThroughputMBps(fst.LogicalBytes, ingestVirtual(fst.Account, w, w))
		pt.LegacyMallocsPerChunk = float64(lMallocs) / float64(lst.NumChunks)
		pt.FastMallocsPerChunk = float64(fMallocs) / float64(fst.NumChunks)
		pt.StoredBytesMatch = lst.StoredBytes == fst.StoredBytes && lst.NumChunks == fst.NumChunks
		rep.Points = append(rep.Points, pt)
	}

	// Steady-state hand-off allocations (pooled vs materialized), measured
	// on the chunk→hash stage alone.
	hcfg := ingestConfig(4, false)
	repo, err := core.OpenRepo(oss.NewMem(), hcfg)
	if err != nil {
		return nil, err
	}
	node := lnode.New(repo, "L0")
	cutter := repo.Cutter()
	rep.HandoffFastAllocs = allocsPerRun(10, func() { node.IngestHandoff(data) })
	rep.HandoffLegacyAllocs = allocsPerRun(10, func() {
		lnode.LegacyHandoff(hcfg.FingerprintAlg, cutter, data, hcfg.HashWorkers)
	})
	node.Close()

	// Streaming ingest: unique stream several windows long, peak live heap
	// sampled as it flows.
	scfg := ingestConfig(4, false)
	srepo, err := core.OpenRepo(discardDataStore{oss.NewMem()}, scfg)
	if err != nil {
		return nil, err
	}
	snode := lnode.New(srepo, "L0")
	defer snode.Close()
	src := &heapPeakReader{inner: io.LimitReader(&ingestRand{state: 1}, streamBytes)}
	//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host ingest speed next to the virtual model
	start := time.Now()
	sst, err := snode.BackupStream("stream", src)
	//slimlint:ignore determinism wall-clock is the measured quantity here
	sWall := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("ingest: stream backup: %w", err)
	}
	rep.Stream = IngestStream{
		Bytes:       sst.LogicalBytes,
		WallMS:      float64(sWall.Microseconds()) / 1e3,
		WallMBps:    simclock.ThroughputMBps(sst.LogicalBytes, sWall),
		VirtualMBps: simclock.ThroughputMBps(sst.LogicalBytes, ingestVirtual(sst.Account, 4, 4)),
		PeakHeapMiB: float64(src.peak) / (1 << 20),
	}
	if src.peak > 0 {
		rep.Stream.InputOverRes = float64(sst.LogicalBytes) / float64(src.peak)
	}
	return rep, nil
}

// runIngest is the registered experiment: it prints the sweep and writes
// the BENCH_ingest.json regression artifact (path via BENCH_INGEST_OUT).
func runIngest(ctx context.Context, w io.Writer, s Scale) error {
	counts := []int{1, 2, 4, 8}
	rep, err := RunIngest(ctx, counts, s.FileBytes, int64(s.FileBytes)*4)
	if err != nil {
		return err
	}

	t := newTable(w, "Ingest fast path: legacy vs pooled pipeline on unique data (MB/s)")
	t.row("workers", "legacy wall", "fast wall", "legacy virtual", "fast virtual", "legacy mallocs/chunk", "fast mallocs/chunk")
	for _, p := range rep.Points {
		t.row(fmt.Sprint(p.Workers),
			f1(p.LegacyWallMBps), f1(p.FastWallMBps),
			f1(p.LegacyVirtualMBps), f1(p.FastVirtualMBps),
			f2(p.LegacyMallocsPerChunk), f2(p.FastMallocsPerChunk))
	}
	t.flush()
	fmt.Fprintf(w, "hand-off allocs/pass: legacy %.1f, fast %.1f (%.0fx lean)\n",
		rep.HandoffLegacyAllocs, rep.HandoffFastAllocs,
		rep.HandoffLegacyAllocs/maxf(rep.HandoffFastAllocs, 1))
	fmt.Fprintf(w, "streaming: %s at %.1f MB/s wall, peak live heap %.1f MiB (input %.0fx resident)\n",
		mib(rep.Stream.Bytes), rep.Stream.WallMBps, rep.Stream.PeakHeapMiB, rep.Stream.InputOverRes)

	out := ingestOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
