//go:build !race

package bench

// benchRace gates numeric assertions that only mean anything without
// race instrumentation (allocation counts, wall-clock ratios).
const benchRace = false
