package bench

import (
	"context"
	"fmt"
	"io"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/workload"
)

func init() {
	register("fig9a", "Fig 9(a): space cost (no-dedup / L-dedupe / G-dedupe / keep-last-10)", runFig9a)
	register("fig9b", "Fig 9(b): space occupied by version 0 over time", runFig9b)
}

// spaceChain is one full SLIMSTORE deployment whose container space is
// tracked per version.
type spaceChain struct {
	mem  *oss.Mem
	repo *core.Repo
	ln   *lnode.LNode
	gn   *gnode.GNode
}

func newSpaceChain() (*spaceChain, error) {
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, benchConfig())
	if err != nil {
		return nil, err
	}
	return &spaceChain{mem: mem, repo: repo, ln: lnode.New(repo, "L0"), gn: gnode.New(repo)}, nil
}

func (c *spaceChain) containerBytes() int64 { return c.mem.BytesWithPrefix("containers/") }

func runFig9a(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 25)
	const retain = 10

	lOnly, err := newSpaceChain()
	if err != nil {
		return err
	}
	full, err := newSpaceChain()
	if err != nil {
		return err
	}
	keep10, err := newSpaceChain()
	if err != nil {
		return err
	}

	type row struct{ logical, lDedupe, gDedupe, keep10 int64 }
	rows := make([]row, versions)
	var logical int64

	for v := 0; v < versions; v++ {
		for i := 0; i < s.Files; i++ {
			data := gen.Version(i, v)
			logical += int64(len(data))
			fileID := gen.FileIDs()[i]

			if _, err := lOnly.ln.Backup(fileID, data); err != nil {
				return err
			}

			st, err := full.ln.Backup(fileID, data)
			if err != nil {
				return err
			}
			if _, err := full.gn.ReverseDedup(st.NewContainers); err != nil {
				return err
			}
			if _, err := full.gn.CompactSparse(fileID, v, st.SparseContainers); err != nil {
				return err
			}

			st2, err := keep10.ln.Backup(fileID, data)
			if err != nil {
				return err
			}
			if _, err := keep10.gn.ReverseDedup(st2.NewContainers); err != nil {
				return err
			}
			if _, err := keep10.gn.CompactSparse(fileID, v, st2.SparseContainers); err != nil {
				return err
			}
			if v >= retain {
				if _, err := keep10.gn.DeleteVersion(fileID, v-retain); err != nil {
					return err
				}
			}
		}
		rows[v] = row{
			logical: logical,
			lDedupe: lOnly.containerBytes(),
			gDedupe: full.containerBytes(),
			keep10:  keep10.containerBytes(),
		}
	}

	t := newTable(w, "Fig 9(a): occupied container space per version")
	t.row("ver", "no-dedup", "l-dedupe", "g-dedupe", "keep-last-10", "l reduction", "g extra")
	for v := 0; v < versions; v += versionStep(versions) {
		r := rows[v]
		gExtra := 0.0
		if r.lDedupe > 0 {
			gExtra = 1 - float64(r.gDedupe)/float64(r.lDedupe)
		}
		t.row(fmt.Sprint(v), mib(r.logical), mib(r.lDedupe), mib(r.gDedupe), mib(r.keep10),
			fmt.Sprintf("%.1fx", float64(r.logical)/float64(max64(r.lDedupe, 1))), pct(gExtra))
	}
	// Always include the final row (the paper's headline numbers).
	last := rows[versions-1]
	t.row(fmt.Sprint(versions-1), mib(last.logical), mib(last.lDedupe), mib(last.gDedupe),
		mib(last.keep10),
		fmt.Sprintf("%.1fx", float64(last.logical)/float64(max64(last.lDedupe, 1))),
		pct(1-float64(last.gDedupe)/float64(max64(last.lDedupe, 1))))
	t.flush()
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func runFig9b(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 25)
	fileIdx := 0
	fileID := gen.FileIDs()[fileIdx]

	chain, err := newSpaceChain()
	if err != nil {
		return err
	}

	// Version 0's original containers; their live bytes shrink over time
	// as reverse dedup and SCC move data into newer versions.
	var v0Containers []container.ID
	v0Space := func() (int64, error) {
		var total int64
		for _, id := range v0Containers {
			m, err := chain.repo.Containers.ReadMeta(id)
			if err != nil {
				continue // container fully collected
			}
			total += m.LiveBytes()
		}
		return total, nil
	}

	t := newTable(w, "Fig 9(b): space occupied by version 0 over time (no version collection)")
	t.row("after ver", "v0 live bytes", "of original")
	var initial int64
	err = gen.VersionSeq(fileIdx, func(v int, data []byte) error {
		if v >= versions {
			return errDone
		}
		st, err := chain.ln.Backup(fileID, data)
		if err != nil {
			return err
		}
		if v == 0 {
			v0Containers = st.NewContainers
		}
		if _, err := chain.gn.ReverseDedup(st.NewContainers); err != nil {
			return err
		}
		if _, err := chain.gn.CompactSparse(fileID, v, st.SparseContainers); err != nil {
			return err
		}
		sp, err := v0Space()
		if err != nil {
			return err
		}
		if v == 0 {
			initial = sp
		}
		if v%versionStep(versions) == 0 || v == versions-1 {
			t.row(fmt.Sprint(v), mib(sp), pct(float64(sp)/float64(max64(initial, 1))))
		}
		return nil
	})
	if err != nil && err != errDone {
		return err
	}
	t.flush()
	return nil
}
