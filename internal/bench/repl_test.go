package bench

import (
	"encoding/json"
	"testing"
	"time"
)

// TestReplRegression is the BENCH_repl.json gate: replicated index
// overhead stays bounded, leader failover costs real-but-bounded virtual
// downtime, and index sharding buys back sweep wall clock. The sweep
// floor is conservative: 4 shards over a db.mu-serialized 1-shard
// baseline measure ~2.1-2.4x (best-of-2 per point).
func TestReplRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow bench sweep")
	}
	rep, err := RunReplBench([]int{1, 4}, 250*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}

	// Replication overhead is a deterministic op/byte count; the bounds
	// say "durability costs less than brute-force mirroring": a 3-replica
	// group must not triple the base-store puts (the shared log amortises
	// them) and reads must stay leader-local.
	o := rep.Overhead
	if o.SinglePutOps <= 0 || o.SingleGetOps <= 0 {
		t.Fatalf("degenerate overhead baseline: %+v", o)
	}
	if o.PutOpsOverhead < 1.0 || o.PutOpsOverhead > 2.0 {
		t.Errorf("put op overhead = %.2fx, want within [1.0, 2.0]", o.PutOpsOverhead)
	}
	if o.PutByteOverhead < 1.0 || o.PutByteOverhead >= float64(o.Replicas) {
		t.Errorf("put byte overhead = %.2fx, want within [1.0, %d.0)", o.PutByteOverhead, o.Replicas)
	}
	if o.GetOpsOverhead > 1.5 {
		t.Errorf("get op overhead = %.2fx, want <= 1.5 (reads must stay leader-local)", o.GetOpsOverhead)
	}

	// Failover: every kill must cost one election, and each election must
	// charge real virtual downtime — but bounded (the acceptance bar is
	// <= 500ms per failover; the configured detection+election budget is
	// 160ms).
	f := rep.Failover
	if f.Failovers != int64(f.Kills) {
		t.Errorf("got %d failovers for %d leader kills", f.Failovers, f.Kills)
	}
	if f.PerFailoverMS <= 0 {
		t.Errorf("failover downtime = %.1fms per failover, want > 0 (free failover means nothing was charged)", f.PerFailoverMS)
	}
	if f.PerFailoverMS > 500 {
		t.Errorf("failover downtime = %.1fms per failover, want <= 500ms", f.PerFailoverMS)
	}

	// Sweep scaling: sharding must not change the logical work, and the
	// parallel index must pay off on the wall clock.
	if len(rep.Sweep) != 2 {
		t.Fatalf("got %d sweep points, want 2", len(rep.Sweep))
	}
	one, four := rep.Sweep[0], rep.Sweep[1]
	if one.ContainersMarked != four.ContainersMarked || one.ContainersSwept != four.ContainersSwept ||
		one.IndexOps != four.IndexOps {
		t.Fatalf("work diverges between 1 and 4 shards:\n1: %+v\n4: %+v", one, four)
	}
	if one.ContainersMarked == 0 || one.ContainersSwept == 0 || one.IndexOps == 0 {
		t.Fatalf("degenerate sweep dataset: %+v", one)
	}
	if four.Speedup < 1.5 {
		t.Errorf("sweep speedup at 4 shards = %.2fx (1s %.1fms, 4s %.1fms), want >= 1.5x",
			four.Speedup, one.WallMS, four.WallMS)
	}
}
