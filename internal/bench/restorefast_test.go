package bench

import (
	"context"
	"runtime"
	"testing"
)

// TestRestoreFastRegression is the BENCH_restorefast.json gate:
//   - the virtual pipeline model at 4 verify workers must be >= 2x the
//     serial composition for EVERY policy (the deterministic stage-max
//     claim; measured ~4-6x — the serial path is read-bound and the
//     pipeline overlaps reads across the prefetch channels);
//   - every point must be a bit-identical twin: same restored bytes and
//     same virtual accounts as the serial emit;
//   - the dense full-file range restore must be completely untouched by
//     the pipeline (identical bytes AND identical sequential elapsed
//     time — the restoreio cost-model calibration depends on it);
//   - the pooled hand-off must allocate far less per pass than the
//     materialize-per-chunk baseline (skipped under -race: instrumented
//     allocation counts).
func TestRestoreFastRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration restore sweep")
	}
	rep, err := RunRestoreFast(context.Background(), []int{1, 4}, SmallScale)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range rep.Points {
		if !p.BytesMatch {
			t.Errorf("%s w=%d: pipelined restore produced different bytes", p.Policy, p.VerifyWorkers)
		}
		if !p.StatsMatch {
			t.Errorf("%s w=%d: pipelined restore diverged from the serial virtual account", p.Policy, p.VerifyWorkers)
		}
	}

	w4 := map[string]RestoreFastPoint{}
	for _, p := range rep.Points {
		if p.VerifyWorkers == 4 {
			w4[p.Policy] = p
		}
	}
	for _, policy := range restoreFastPolicies {
		p, ok := w4[policy]
		if !ok {
			t.Fatalf("no 4-worker point for policy %s", policy)
		}
		if p.FastVirtualMBps < 2*p.SerialVirtualMBps {
			t.Errorf("virtual restore (%s, w=4): fast %.1f MB/s < 2x serial %.1f MB/s",
				policy, p.FastVirtualMBps, p.SerialVirtualMBps)
		}
	}

	if !rep.Dense.BytesMatch {
		t.Errorf("dense range restore: pipelined bytes differ from serial")
	}
	if !rep.Dense.ElapsedMatch {
		t.Errorf("dense range restore: pipelined elapsed %.3f ms != serial %.3f ms (range restores must stay sequential-time)",
			rep.Dense.FastMS, rep.Dense.SerialMS)
	}

	// Heap growth during the pipelined restore is dominated by the job's
	// chunk cache (64 MiB configured); the pipeline window itself adds
	// O(window × chunk size). Gate that the total stays bounded by the
	// cache budget — an unbounded pipeline would retain the restored
	// stream on top of it.
	if rep.Residency.PeakHeapMiB > 0 && rep.Residency.PipelineMiB > 64 {
		t.Errorf("pipelined restore residency grew by %.1f MiB — exceeds the 64 MiB cache budget, pipeline window is not bounded",
			rep.Residency.PipelineMiB)
	}

	if benchRace {
		t.Log("allocation gate skipped under -race (instrumented counts)")
		return
	}
	if rep.HandoffFastAllocs*4 > rep.HandoffLegacyAllocs {
		t.Errorf("hand-off allocs: fast %.1f/pass is not 4x below legacy %.1f/pass (host %d CPUs)",
			rep.HandoffFastAllocs, rep.HandoffLegacyAllocs, runtime.NumCPU())
	}
}
