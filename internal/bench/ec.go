package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
)

func init() {
	register("ec", "Erasure-coded redundancy tier: storage overhead and degraded-read latency vs plain and (1+M)-replication", runECBench)
}

// ecFileBytes sizes the backed-up file: unique incompressible data so the
// container set (and thus the stored-byte comparison) is deterministic.
const ecFileBytes = 2 << 20

// ECSchemePoint is one redundancy scheme's position on the
// durability / cost / restore-latency frontier.
type ECSchemePoint struct {
	Scheme   string `json:"scheme"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Backends int    `json:"backends"`
	// ToleratesDomains is how many whole fault domains may fail with every
	// byte still restorable.
	ToleratesDomains int `json:"tolerates_domains"`

	StoredBytes int64   `json:"stored_bytes"` // physical container-namespace bytes
	OverheadX   float64 `json:"overhead_x"`   // stored bytes / plain scheme's stored bytes

	HealthyMS  float64 `json:"healthy_ms"`  // virtual full-restore time, all backends up
	DegradedMS float64 `json:"degraded_ms"` // virtual full-restore time, M backends dark
	DegradedX  float64 `json:"degraded_x"`  // degraded / healthy

	// SurvivesAllM is the exhaustive durability check: a byte-identical
	// restore succeeded under every outage pattern of ≤ M backends.
	SurvivesAllM bool `json:"survives_all_m"`
}

// ECReport is the BENCH_ec.json schema.
type ECReport struct {
	Experiment string          `json:"experiment"`
	FileBytes  int             `json:"file_bytes"`
	Schemes    []ECSchemePoint `json:"schemes"`
}

// ecOutPath decides where the JSON artifact lands; BENCH_EC_OUT overrides
// the default.
func ecOutPath() string {
	//slimlint:ignore determinism BENCH_EC_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_EC_OUT"); p != "" {
		return p
	}
	return "BENCH_ec.json"
}

func ecData() []byte {
	data := make([]byte, ecFileBytes)
	rand.New(rand.NewSource(23)).Read(data)
	return data
}

func ecBenchConfig(k, m int) core.Config {
	cfg := benchConfig()
	cfg.PrefetchThreads = 0 // serial restores: virtual times are comparable across schemes
	cfg.SharedCacheBytes = -1
	cfg.ECDataShards = k
	cfg.ECParityShards = m
	return cfg
}

// ecStoredBytes sums the physical bytes backing the container namespace:
// shard objects for striped schemes, the container objects themselves for
// the plain one.
func ecStoredBytes(mem *oss.Mem, striped bool) (int64, error) {
	prefix := container.Prefix
	if striped {
		prefix = "ec/"
	}
	keys, err := mem.List(prefix)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, k := range keys {
		n, err := mem.Head(k)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// ecRestoreOnce reopens the repo cold (empty caches), optionally blacks
// out the given backends, and runs one full restore: byte-verified, with
// its virtual elapsed time returned.
func ecRestoreOnce(mem *oss.Mem, cfg core.Config, data []byte, down []int) (float64, error) {
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return 0, err
	}
	for _, i := range down {
		repo.EC.Backends()[i].Faulty.SetOutage(true)
	}
	var buf bytes.Buffer
	st, err := lnode.New(repo, "ec-bench").Restore("f", 0, &buf)
	if err != nil {
		return 0, fmt.Errorf("restore with backends %v down: %w", down, err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		return 0, fmt.Errorf("restore with backends %v down returned wrong bytes", down)
	}
	return float64(st.Elapsed.Microseconds()) / 1e3, nil
}

// ecRunScheme measures one redundancy scheme. k == 0 is the plain
// single-copy baseline; k == 1 with m parity shards is naive
// (1+M)-replication; k > 1 is the RS stripe.
func ecRunScheme(name string, k, m int, data []byte) (ECSchemePoint, error) {
	pt := ECSchemePoint{Scheme: name, K: k, M: m, ToleratesDomains: m}
	cfg := ecBenchConfig(k, m)
	if k > 0 {
		pt.Backends = k + m
	}
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return pt, err
	}
	if _, err := lnode.New(repo, "ec-bench").Backup("f", data); err != nil {
		return pt, err
	}
	if pt.StoredBytes, err = ecStoredBytes(mem, k > 0); err != nil {
		return pt, err
	}
	if pt.HealthyMS, err = ecRestoreOnce(mem, cfg, data, nil); err != nil {
		return pt, err
	}
	if k == 0 {
		pt.SurvivesAllM = true // vacuously: zero domains may fail
		return pt, nil
	}

	// Worst-case degraded latency: the full M backends dark at once.
	var worst []int
	for i := 0; i < m; i++ {
		worst = append(worst, i)
	}
	if pt.DegradedMS, err = ecRestoreOnce(mem, cfg, data, worst); err != nil {
		return pt, err
	}
	pt.DegradedX = pt.DegradedMS / pt.HealthyMS

	// Exhaustive durability: every outage pattern of ≤ M of the K+M
	// backends must restore byte-identical.
	n := k + m
	for mask := 1; mask < 1<<n; mask++ {
		var down []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				down = append(down, i)
			}
		}
		if len(down) > m {
			continue
		}
		if _, err := ecRestoreOnce(mem, cfg, data, down); err != nil {
			return pt, err
		}
	}
	pt.SurvivesAllM = true
	return pt, nil
}

// RunECBench measures the durability/cost/latency frontier: plain single
// copy, naive (1+M)-replication, and the RS(K+M) stripe at matched
// fault tolerance.
func RunECBench() (*ECReport, error) {
	rep := &ECReport{Experiment: "ec", FileBytes: ecFileBytes}
	data := ecData()
	schemes := []struct {
		name string
		k, m int
	}{
		{"plain", 0, 0},
		{"rep2 (1+1)", 1, 1},
		{"rep3 (1+2)", 1, 2},
		{"rs4+2", 4, 2},
	}
	for _, s := range schemes {
		pt, err := ecRunScheme(s.name, s.k, s.m, data)
		if err != nil {
			return nil, fmt.Errorf("ec bench: scheme %s: %w", s.name, err)
		}
		rep.Schemes = append(rep.Schemes, pt)
	}
	plain := rep.Schemes[0].StoredBytes
	for i := range rep.Schemes {
		rep.Schemes[i].OverheadX = float64(rep.Schemes[i].StoredBytes) / float64(plain)
	}
	return rep, nil
}

// runECBench is the registered experiment: it prints the frontier table
// and writes the BENCH_ec.json regression artifact (path via
// BENCH_EC_OUT).
func runECBench(_ context.Context, w io.Writer, _ Scale) error {
	rep, err := RunECBench()
	if err != nil {
		return err
	}
	t := newTable(w, "Redundancy schemes: storage overhead vs fault tolerance vs restore latency (virtual time)")
	t.row("scheme", "backends", "tolerates", "stored MiB", "overhead", "healthy ms", "degraded ms", "degraded x", "survives ≤M")
	for _, p := range rep.Schemes {
		deg, degx := "-", "-"
		if p.DegradedMS > 0 {
			deg, degx = f1(p.DegradedMS), f2(p.DegradedX)
		}
		t.row(p.Scheme, fmt.Sprint(p.Backends), fmt.Sprint(p.ToleratesDomains),
			f2(float64(p.StoredBytes)/(1<<20)), f2(p.OverheadX),
			f1(p.HealthyMS), deg, degx, fmt.Sprint(p.SurvivesAllM))
	}
	t.flush()

	out := ecOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}
