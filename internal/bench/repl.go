package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/kvstore"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/repl"
)

func init() {
	register("repl", "Replicated global index: replication overhead, virtual failover downtime, sweep speedup vs shard count", runReplBench)
}

// Workload shapes. The overhead workload mirrors index traffic:
// fingerprint-sized keys, container-id-sized values, batched like the
// L-node's segment commits. The sweep dataset is dedup-heavy (every file
// shares one big block) so the mark phase resolves many redirects through
// the global index — the component sharding parallelises.
const (
	replOverheadBatches = 64
	replOverheadEntries = 64
	replOverheadKeyLen  = 20 // fingerprint.Size
	replOverheadValLen  = 8  // container ID

	replSweepFiles       = 12
	replSweepSharedBytes = 1 << 20
	replSweepUniqueBytes = 64 << 10
	replSweepReps        = 2 // best-of reps per point, identical datasets
)

// ReplOverhead compares the OSS traffic of one durable batched index
// workload on a plain kvstore versus a 2f+1 replica group. All columns
// are operation/byte counts at the base object store — deterministic.
type ReplOverhead struct {
	Replicas        int   `json:"replicas"`
	Batches         int   `json:"batches"`
	EntriesPerBatch int   `json:"entries_per_batch"`
	SinglePutOps    int64 `json:"single_put_ops"`
	SinglePutBytes  int64 `json:"single_put_bytes"`
	SingleGetOps    int64 `json:"single_get_ops"`
	GroupPutOps     int64 `json:"group_put_ops"`
	GroupPutBytes   int64 `json:"group_put_bytes"`
	GroupGetOps     int64 `json:"group_get_ops"`

	PutOpsOverhead  float64 `json:"put_ops_overhead"`  // group / single
	PutByteOverhead float64 `json:"put_byte_overhead"` // group / single
	GetOpsOverhead  float64 `json:"get_ops_overhead"`  // group / single
}

// ReplFailover reports the virtual cost of leader failover: kills are
// injected, elections run on the next operation, and the detection
// timeout plus election round trips are charged as virtual time.
type ReplFailover struct {
	Kills             int     `json:"kills"`
	Failovers         int64   `json:"failovers"`
	DowntimeVirtualMS float64 `json:"downtime_virtual_ms"`
	PerFailoverMS     float64 `json:"per_failover_ms"`
}

// ReplSweepPoint is one row of the FullSweep shard-scaling sweep: same
// dataset, same logical work, wall clock under injected OSS latency.
type ReplSweepPoint struct {
	Shards           int     `json:"shards"`
	WallMS           float64 `json:"wall_ms"`
	Speedup          float64 `json:"speedup"` // vs the 1-shard row
	ContainersMarked int     `json:"containers_marked"`
	ContainersSwept  int     `json:"containers_swept"`
	IndexOps         int64   `json:"index_ops"`
}

// ReplReport is the BENCH_repl.json schema: the regression artifact
// pinning what index replication costs and what sharding buys back.
type ReplReport struct {
	Experiment     string           `json:"experiment"`
	HostCPUs       int              `json:"host_cpus"`
	PerOpLatencyUS int64            `json:"per_op_latency_us"`
	Overhead       ReplOverhead     `json:"overhead"`
	Failover       ReplFailover     `json:"failover"`
	Sweep          []ReplSweepPoint `json:"sweep"`
}

// replOutPath decides where the JSON artifact lands; BENCH_REPL_OUT
// overrides the default (BENCH_repl.json in the working directory).
func replOutPath() string {
	//slimlint:ignore determinism BENCH_REPL_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_REPL_OUT"); p != "" {
		return p
	}
	return "BENCH_repl.json"
}

// replCountingStore counts every put/get at the base store, underneath
// the kvstore and the replication log alike.
type replCountingStore struct {
	oss.Store
	mu       sync.Mutex
	putOps   int64
	putBytes int64
	getOps   int64
}

func (s *replCountingStore) Put(key string, data []byte) error {
	s.mu.Lock()
	s.putOps++
	s.putBytes += int64(len(data))
	s.mu.Unlock()
	return s.Store.Put(key, data)
}

func (s *replCountingStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	s.getOps++
	s.mu.Unlock()
	return s.Store.Get(key)
}

func (s *replCountingStore) GetRange(key string, off, n int64) ([]byte, error) {
	s.mu.Lock()
	s.getOps++
	s.mu.Unlock()
	return s.Store.GetRange(key, off, n)
}

func (s *replCountingStore) snapshot() (putOps, putBytes, getOps int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.putOps, s.putBytes, s.getOps
}

// replWorkload builds the deterministic batched index workload: every
// run produces identical batches, so single-node and replicated traffic
// are directly comparable.
func replWorkload() ([]*kvstore.Batch, [][][]byte) {
	rng := rand.New(rand.NewSource(23))
	batches := make([]*kvstore.Batch, replOverheadBatches)
	keys := make([][][]byte, replOverheadBatches)
	for i := range batches {
		var b kvstore.Batch
		for j := 0; j < replOverheadEntries; j++ {
			k := make([]byte, replOverheadKeyLen)
			v := make([]byte, replOverheadValLen)
			rng.Read(k)
			rng.Read(v)
			b.Put(k, v)
			keys[i] = append(keys[i], k)
		}
		batches[i] = &b
	}
	return batches, keys
}

// replOverheadRun measures the workload's base-store traffic through
// one durable writer: apply returns after each batch is durable, read
// runs the batched lookups after a flush (so reads hit tables, not the
// memtable). Both sides must return every written value.
func replOverheadRun(apply func(*kvstore.Batch) error, flush func() error,
	read func([][]byte) ([][]byte, []bool, error)) error {
	batches, keys := replWorkload()
	for _, b := range batches {
		if err := apply(b); err != nil {
			return err
		}
	}
	if err := flush(); err != nil {
		return err
	}
	for i, kb := range keys {
		values, found, err := read(kb)
		if err != nil {
			return err
		}
		for j := range kb {
			if !found[j] || len(values[j]) != replOverheadValLen {
				return fmt.Errorf("batch %d key %d: lost after durable apply (found=%v)", i, j, found[j])
			}
		}
	}
	return nil
}

// RunReplOverhead measures single-node vs replicated OSS traffic for the
// identical durable workload. replicas is the group size (2f+1).
func RunReplOverhead(replicas int) (*ReplOverhead, error) {
	o := &ReplOverhead{
		Replicas:        replicas,
		Batches:         replOverheadBatches,
		EntriesPerBatch: replOverheadEntries,
	}

	// Baseline: one kvstore, synced after every batch — the same
	// per-batch durability point the group's log put provides.
	scs := &replCountingStore{Store: oss.NewMem()}
	db, err := kvstore.Open(scs, kvstore.Options{Prefix: "idx/"})
	if err != nil {
		return nil, err
	}
	err = replOverheadRun(
		func(b *kvstore.Batch) error {
			if err := db.Apply(b); err != nil {
				return err
			}
			return db.Sync()
		},
		db.Flush,
		db.GetMulti,
	)
	if err != nil {
		return nil, fmt.Errorf("repl bench: single-node workload: %w", err)
	}
	o.SinglePutOps, o.SinglePutBytes, o.SingleGetOps = scs.snapshot()

	gcs := &replCountingStore{Store: oss.NewMem()}
	g, err := repl.Open(gcs, repl.Options{Prefix: "grp/", Replicas: replicas})
	if err != nil {
		return nil, err
	}
	err = replOverheadRun(g.Apply, g.Flush, g.GetMulti)
	if err != nil {
		return nil, fmt.Errorf("repl bench: replicated workload: %w", err)
	}
	o.GroupPutOps, o.GroupPutBytes, o.GroupGetOps = gcs.snapshot()

	o.PutOpsOverhead = float64(o.GroupPutOps) / float64(o.SinglePutOps)
	o.PutByteOverhead = float64(o.GroupPutBytes) / float64(o.SinglePutBytes)
	o.GetOpsOverhead = float64(o.GroupGetOps) / float64(o.SingleGetOps)
	return o, nil
}

// RunReplFailover kills the leader `kills` times with commits in
// between; every kill forces an election on the next apply, and the
// group's stats record the virtual downtime each election charged.
func RunReplFailover(replicas, kills int) (*ReplFailover, error) {
	g, err := repl.Open(oss.NewMem(), repl.Options{Prefix: "grp/", Replicas: replicas})
	if err != nil {
		return nil, err
	}
	batches, _ := replWorkload()
	bi := 0
	apply := func() error {
		b := batches[bi%len(batches)].Clone()
		bi++
		return g.Apply(b)
	}
	if err := apply(); err != nil {
		return nil, err
	}
	for i := 0; i < kills; i++ {
		dead := g.KillLeader()
		if err := apply(); err != nil {
			return nil, fmt.Errorf("repl bench: apply after kill %d: %w", i, err)
		}
		if err := g.Restart(dead); err != nil {
			return nil, fmt.Errorf("repl bench: restart %d: %w", dead, err)
		}
	}
	st := g.ReplStats()
	f := &ReplFailover{
		Kills:             kills,
		Failovers:         st.Failovers,
		DowntimeVirtualMS: float64(st.DowntimeVirtual.Microseconds()) / 1e3,
	}
	if st.Failovers > 0 {
		f.PerFailoverMS = f.DowntimeVirtualMS / float64(st.Failovers)
	}
	return f, nil
}

// replSweepRun measures FullSweep wall clock at one shard count,
// best-of-replSweepReps over identically-built datasets (the sweep
// mutates its repo, so each rep rebuilds from the same seeds). Work
// columns must agree across reps; only the minimum wall is reported.
func replSweepRun(shards int, perOp time.Duration) (ReplSweepPoint, error) {
	pt, err := replSweepOnce(shards, perOp)
	if err != nil {
		return pt, err
	}
	for r := 1; r < replSweepReps; r++ {
		again, err := replSweepOnce(shards, perOp)
		if err != nil {
			return pt, err
		}
		if again.ContainersMarked != pt.ContainersMarked || again.ContainersSwept != pt.ContainersSwept || again.IndexOps != pt.IndexOps {
			return pt, fmt.Errorf("repl bench: sweep reps disagree on work at %d shards: %+v vs %+v", shards, pt, again)
		}
		if again.WallMS < pt.WallMS {
			pt.WallMS = again.WallMS
		}
	}
	return pt, nil
}

// replSweepOnce builds the dedup-heavy dataset on an N-shard index
// (latency-free), runs reverse dedup so most recipe chunks resolve
// through index redirects, then reopens the repo behind perOp of OSS
// latency and wall-clocks FullSweep. MaintWorkers is fixed at 4 so the
// only variable across points is the shard count.
func replSweepOnce(shards int, perOp time.Duration) (ReplSweepPoint, error) {
	pt := ReplSweepPoint{Shards: shards}
	cfg := benchConfig()
	cfg.SimilarityMinScore = 1.1 // force per-file copies; reverse dedup makes the redirects
	cfg.MaintWorkers = 4
	cfg.GlobalShards = shards
	cfg.GlobalKV.BlockCacheBytes = -1 // every index block read is an OSS read

	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return pt, err
	}
	ln := lnode.New(repo, "L0")
	shared := make([]byte, replSweepSharedBytes)
	rand.New(rand.NewSource(31)).Read(shared)
	var ids []container.ID
	for i := 0; i < replSweepFiles; i++ {
		unique := make([]byte, replSweepUniqueBytes)
		rand.New(rand.NewSource(int64(100 + i))).Read(unique)
		st, err := ln.Backup(fmt.Sprintf("f%02d", i), append(append([]byte(nil), shared...), unique...))
		if err != nil {
			return pt, err
		}
		ids = append(ids, st.NewContainers...)
	}
	gn := gnode.New(repo)
	rd, err := gn.ReverseDedup(ids)
	if err != nil {
		return pt, err
	}
	if rd.DuplicatesRemoved == 0 {
		return pt, fmt.Errorf("repl bench: degenerate sweep dataset, nothing deduplicated: %+v", rd)
	}
	if err := repo.Global.Flush(); err != nil {
		return pt, err
	}

	repo2, err := core.OpenRepo(&oss.Latency{S: mem, PerOp: perOp}, cfg)
	if err != nil {
		return pt, err
	}
	gn2 := gnode.New(repo2)
	//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep pins shard-parallel sweep speedup on real cores
	start := time.Now()
	st, err := gn2.FullSweep()
	//slimlint:ignore determinism wall-clock is the measured quantity here
	wall := time.Since(start)
	if err != nil {
		return pt, fmt.Errorf("repl bench: full sweep (%d shards): %w", shards, err)
	}
	pt.WallMS = float64(wall.Microseconds()) / 1e3
	pt.ContainersMarked = st.ContainersMarked
	pt.ContainersSwept = st.ContainersSwept
	pt.IndexOps = repo2.Global.Ops()
	return pt, nil
}

// RunReplBench runs all three measurements: deterministic replication
// overhead, deterministic virtual failover downtime, and the wall-clock
// sweep scaling over shardCounts.
func RunReplBench(shardCounts []int, perOp time.Duration) (*ReplReport, error) {
	rep := &ReplReport{
		Experiment:     "repl",
		HostCPUs:       runtime.NumCPU(),
		PerOpLatencyUS: perOp.Microseconds(),
	}
	o, err := RunReplOverhead(3)
	if err != nil {
		return nil, err
	}
	rep.Overhead = *o
	f, err := RunReplFailover(3, 3)
	if err != nil {
		return nil, err
	}
	rep.Failover = *f
	for _, s := range shardCounts {
		pt, err := replSweepRun(s, perOp)
		if err != nil {
			return nil, err
		}
		base := pt
		if len(rep.Sweep) > 0 {
			base = rep.Sweep[0]
		}
		pt.Speedup = base.WallMS / pt.WallMS
		rep.Sweep = append(rep.Sweep, pt)
	}
	return rep, nil
}

// runReplBench is the registered experiment: it prints the three
// measurements and writes the BENCH_repl.json regression artifact (path
// via BENCH_REPL_OUT).
func runReplBench(ctx context.Context, w io.Writer, _ Scale) error {
	rep, err := RunReplBench([]int{1, 2, 4}, 250*time.Microsecond)
	if err != nil {
		return err
	}

	o := rep.Overhead
	t := newTable(w, fmt.Sprintf("Replication overhead: %d batches × %d entries, durable per batch (base-store traffic)", o.Batches, o.EntriesPerBatch))
	t.row("layout", "put ops", "put KiB", "get ops")
	t.row("single kvstore", fmt.Sprint(o.SinglePutOps), f1(float64(o.SinglePutBytes)/1024), fmt.Sprint(o.SingleGetOps))
	t.row(fmt.Sprintf("%d-replica group", o.Replicas), fmt.Sprint(o.GroupPutOps), f1(float64(o.GroupPutBytes)/1024), fmt.Sprint(o.GroupGetOps))
	t.row("overhead", f2(o.PutOpsOverhead)+"x", f2(o.PutByteOverhead)+"x", f2(o.GetOpsOverhead)+"x")
	t.flush()

	fmt.Fprintf(w, "failover: %d leader kills → %d elections, %.1fms virtual downtime (%.1fms each)\n",
		rep.Failover.Kills, rep.Failover.Failovers, rep.Failover.DowntimeVirtualMS, rep.Failover.PerFailoverMS)

	t = newTable(w, "FullSweep wall clock by shard count (4 maintenance workers, 250µs/op OSS latency)")
	t.row("shards", "wall ms", "speedup", "marked", "swept", "index ops")
	for _, p := range rep.Sweep {
		t.row(fmt.Sprint(p.Shards), f1(p.WallMS), f2(p.Speedup)+"x",
			fmt.Sprint(p.ContainersMarked), fmt.Sprint(p.ContainersSwept), fmt.Sprint(p.IndexOps))
	}
	t.flush()

	out := replOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}
