package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"slimstore/internal/cache"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
	"slimstore/internal/workload"
)

func init() {
	register("restorefast", "Restore fast path: serial vs pooled parallel-verify pipeline (DESIGN.md §14)", runRestoreFast)
}

// This experiment is the read-side twin of the ingest benchmark: it pins
// what the pooled restore pipeline (internal/lnode/restorefast.go) buys
// over the serial per-chunk emit, and that it buys it without changing a
// single virtual charge. Every point runs the SAME restore twice — once
// with Config.LegacyRestore (charge, verify, write inside one sequential
// callback) and once through the emit→verify→write pipeline — and
// compares accounts: the twin columns must match bit-for-bit while the
// pipeline's stage-max virtual time pulls ahead.

// restoreFastPolicies is the full policy matrix: the pipeline is
// policy-agnostic (the prefetcher dispatches from the pinned sequence,
// not from the policy), so every policy must show the same twin identity.
var restoreFastPolicies = []string{"fv", "opt", "alacc", "lru"}

// RestoreFastPoint is one (policy, verify-worker) cell: the serial
// composition vs the pipelined stage-max model over identical charges.
type RestoreFastPoint struct {
	Policy        string `json:"policy"`
	VerifyWorkers int    `json:"verify_workers"`
	Bytes         int64  `json:"bytes"`

	// Virtual columns are deterministic: serial is the legacy pipeline's
	// fully sequential composition (every fetch blocks the SHA blocks the
	// write); fast is the stage-max of the overlapped pipeline stages
	// computed over the SAME account totals.
	SerialVirtualMBps float64 `json:"serial_virtual_mbps"`
	FastVirtualMBps   float64 `json:"fast_virtual_mbps"`
	VirtualSpeedup    float64 `json:"virtual_speedup"`

	// Wall columns are informational (host-dependent).
	SerialWallMS float64 `json:"serial_wall_ms"`
	FastWallMS   float64 `json:"fast_wall_ms"`

	// Twin identity: the pipelined run must restore the same bytes and
	// produce bit-identical virtual accounts (cache stats, CPU, I/O).
	BytesMatch bool `json:"bytes_match"`
	StatsMatch bool `json:"stats_match"`
}

// RestoreFastDense is the dense full-file range-restore control: range
// restores keep strictly sequential virtual time (the ranged-read
// planner's cost model is calibrated against it, see BENCH_restoreio),
// so the pipeline must change nothing there — not even the elapsed time.
type RestoreFastDense struct {
	Bytes        int64   `json:"bytes"`
	SerialMS     float64 `json:"serial_virtual_ms"`
	FastMS       float64 `json:"fast_virtual_ms"`
	BytesMatch   bool    `json:"bytes_match"`
	ElapsedMatch bool    `json:"elapsed_match"`
}

// RestoreFastResidency reports peak live heap while the pipeline streams
// a verify-restore: the window bounds slots in flight, so residency is
// the base repo footprint plus O(window × chunk size), not O(file).
type RestoreFastResidency struct {
	RestoredBytes int64   `json:"restored_bytes"`
	BaseHeapMiB   float64 `json:"base_heap_mib"`
	PeakHeapMiB   float64 `json:"peak_heap_mib"`
	PipelineMiB   float64 `json:"pipeline_mib"`
}

// RestoreFastReport is the BENCH_restorefast.json schema: the regression
// artifact TestRestoreFastRegression gates on.
type RestoreFastReport struct {
	Experiment      string   `json:"experiment"`
	FileBytes       int      `json:"file_bytes"`
	Versions        int      `json:"versions"`
	PrefetchThreads int      `json:"prefetch_threads"`
	HostCPUs        int      `json:"host_cpus"`
	Policies        []string `json:"policies"`

	Points []RestoreFastPoint `json:"points"`
	Dense  RestoreFastDense   `json:"dense"`

	// Steady-state hand-off allocations per pass: the pooled
	// emit→verify→write pipeline vs the materialize-per-chunk baseline.
	HandoffFastAllocs   float64 `json:"handoff_fast_allocs_per_pass"`
	HandoffLegacyAllocs float64 `json:"handoff_legacy_allocs_per_pass"`

	Residency RestoreFastResidency `json:"residency"`
}

// restorefastOutPath decides where the JSON artifact lands;
// BENCH_RESTOREFAST_OUT overrides the default.
func restorefastOutPath() string {
	//slimlint:ignore determinism BENCH_RESTOREFAST_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_RESTOREFAST_OUT"); p != "" {
		return p
	}
	return "BENCH_restorefast.json"
}

// restoreVirtual composes the pipelined restore's virtual elapsed time
// from the account's phase totals: OSS reads overlap across the LAW
// prefetch channels, fingerprint verification fans out over the verify
// pool (W-way), the emit stage (restore memcpy + disk-cache traffic +
// redirect index queries) stays serial in sequence order, and the sink
// runs write-behind. The slowest stage is the pipeline's period.
func restoreVirtual(acct *simclock.Account, verifyW, threads int) time.Duration {
	if verifyW < 1 {
		verifyW = 1
	}
	if threads < 1 {
		threads = 1
	}
	io := acct.IO()
	stages := []time.Duration{
		io.ReadTime / time.Duration(threads),
		acct.CPUPhase(simclock.PhaseFingerprint) / time.Duration(verifyW),
		acct.CPUPhase(simclock.PhaseOther) + acct.CPUPhase(simclock.PhaseIndexQuery),
		io.WriteTime,
	}
	var max time.Duration
	for _, s := range stages {
		if s > max {
			max = s
		}
	}
	return max
}

// restoreFastChain is slimChain with the node-wide shared restore cache
// disabled: the twin comparison needs both runs of a pair to hit cold,
// per-job fetch accounting (a shared cache warmed by the serial run
// would hand the pipelined run free containers and skew its account).
func restoreFastChain(gen *workload.Generator, fileIdx, versions int) (*core.Repo, error) {
	cfg := benchConfig()
	cfg.SharedCacheBytes = -1
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		return nil, err
	}
	ln := lnode.New(repo, "L-chain")
	defer ln.Close()
	gn := gnode.New(repo)
	fileID := gen.FileIDs()[fileIdx]
	err = gen.VersionSeq(fileIdx, func(v int, data []byte) error {
		if v >= versions {
			return errDone
		}
		st, err := ln.Backup(fileID, data)
		if err != nil {
			return err
		}
		if _, err := gn.ReverseDedup(st.NewContainers); err != nil {
			return err
		}
		_, err = gn.CompactSparse(fileID, v, st.SparseContainers)
		return err
	})
	if err != nil && err != errDone {
		return nil, err
	}
	return repo, nil
}

// restoreTwinMatch compares the serial and pipelined runs of one
// restore: same bytes, and bit-identical virtual accounting (cache
// stats, per-phase CPU totals, I/O totals). The prefetcher's
// consumed-vs-direct split is scheduling-dependent and excluded — the
// charges it produces are not.
func restoreTwinMatch(serial, fast *lnode.RestoreStats) (bytesMatch, statsMatch bool) {
	bytesMatch = serial.Bytes == fast.Bytes
	sio, fio := serial.Account.IO(), fast.Account.IO()
	statsMatch = bytesMatch &&
		serial.Redirects == fast.Redirects &&
		serial.Cache == fast.Cache &&
		sio == fio &&
		serial.Account.CPUTime() == fast.Account.CPUTime()
	return bytesMatch, statsMatch
}

// heapPeakWriter samples live heap every 2 MiB of restored output.
type heapPeakWriter struct {
	since int64
	peak  uint64
}

func (h *heapPeakWriter) Write(p []byte) (int, error) {
	h.since += int64(len(p))
	if h.since >= 2<<20 {
		h.since = 0
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > h.peak {
			h.peak = ms.HeapAlloc
		}
	}
	return len(p), nil
}

// RunRestoreFast measures serial vs pipelined restore over
// workerCounts × the full policy matrix on one optimised version chain,
// plus the dense range-restore control, the steady-state hand-off
// allocation comparison, and a pipelined verify-restore residency row.
func RunRestoreFast(ctx context.Context, workerCounts []int, s Scale) (*RestoreFastReport, error) {
	versions := clampVersions(s, 8)
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	fileIdx := 0
	fileID := gen.FileIDs()[fileIdx]
	repo, err := restoreFastChain(gen, fileIdx, versions)
	if err != nil {
		return nil, err
	}
	version := versions - 1

	rep := &RestoreFastReport{
		Experiment:      "restorefast",
		FileBytes:       s.FileBytes,
		Versions:        versions,
		PrefetchThreads: repo.Config.PrefetchThreads,
		HostCPUs:        runtime.NumCPU(),
		Policies:        restoreFastPolicies,
	}
	threads := repo.Config.PrefetchThreads

	for _, w := range workerCounts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Fresh node per worker count: the dedicated verify pool is sized
		// once per node, so reusing a node across W would pin the first
		// width for every later wall measurement.
		repo.Config.VerifyWorkers = w
		node := lnode.New(repo, fmt.Sprintf("L-w%d", w))
		for _, policy := range restoreFastPolicies {
			repo.Config.RestorePolicy = policy

			repo.Config.LegacyRestore = true
			//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host restore speed next to the virtual model
			start := time.Now()
			sst, err := node.Verify(fileID, version)
			//slimlint:ignore determinism wall-clock is the measured quantity here
			sWall := time.Since(start)
			if err != nil {
				node.Close()
				return nil, fmt.Errorf("restorefast: serial verify (%s, w=%d): %w", policy, w, err)
			}

			repo.Config.LegacyRestore = false
			//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host restore speed next to the virtual model
			start = time.Now()
			fst, err := node.Verify(fileID, version)
			//slimlint:ignore determinism wall-clock is the measured quantity here
			fWall := time.Since(start)
			if err != nil {
				node.Close()
				return nil, fmt.Errorf("restorefast: pipelined verify (%s, w=%d): %w", policy, w, err)
			}

			pt := RestoreFastPoint{Policy: policy, VerifyWorkers: w, Bytes: fst.Bytes}
			pt.SerialVirtualMBps = simclock.ThroughputMBps(sst.Bytes, sst.Account.ElapsedSequential())
			pt.FastVirtualMBps = simclock.ThroughputMBps(fst.Bytes, restoreVirtual(fst.Account, w, threads))
			if pt.SerialVirtualMBps > 0 {
				pt.VirtualSpeedup = pt.FastVirtualMBps / pt.SerialVirtualMBps
			}
			pt.SerialWallMS = float64(sWall.Microseconds()) / 1e3
			pt.FastWallMS = float64(fWall.Microseconds()) / 1e3
			pt.BytesMatch, pt.StatsMatch = restoreTwinMatch(sst, fst)
			rep.Points = append(rep.Points, pt)
		}
		node.Close()
	}

	// Dense control: a full-file range restore must be untouched by the
	// pipeline — identical bytes AND identical (strictly sequential)
	// virtual elapsed time, so the restoreio cost-model calibration holds.
	repo.Config.RestorePolicy = "fv"
	node := lnode.New(repo, "L-dense")
	defer node.Close()
	repo.Config.LegacyRestore = true
	dst, err := node.RestoreRange(fileID, version, 0, -1, io.Discard)
	if err != nil {
		return nil, fmt.Errorf("restorefast: serial dense range restore: %w", err)
	}
	repo.Config.LegacyRestore = false
	fdt, err := node.RestoreRange(fileID, version, 0, -1, io.Discard)
	if err != nil {
		return nil, fmt.Errorf("restorefast: pipelined dense range restore: %w", err)
	}
	rep.Dense = RestoreFastDense{
		Bytes:        fdt.Bytes,
		SerialMS:     float64(dst.Elapsed.Microseconds()) / 1e3,
		FastMS:       float64(fdt.Elapsed.Microseconds()) / 1e3,
		BytesMatch:   dst.Bytes == fdt.Bytes,
		ElapsedMatch: dst.Elapsed == fdt.Elapsed,
	}

	// Steady-state hand-off allocations: drive synthetic chunks through
	// the pooled pipeline vs the materialize-per-chunk baseline.
	hcfg := benchConfig()
	hrepo, err := core.OpenRepo(oss.NewMem(), hcfg)
	if err != nil {
		return nil, err
	}
	hnode := lnode.New(hrepo, "L-handoff")
	defer hnode.Close()
	const handoffChunks, handoffChunkBytes = 2048, 4096
	buf := make([]byte, handoffChunks*handoffChunkBytes)
	if _, err := (&ingestRand{state: 7}).Read(buf); err != nil {
		return nil, err
	}
	chunks := make([][]byte, handoffChunks)
	seq := make([]cache.Request, handoffChunks)
	for i := range chunks {
		chunks[i] = buf[i*handoffChunkBytes : (i+1)*handoffChunkBytes]
		seq[i] = cache.Request{
			FP:   fingerprint.Of(hcfg.FingerprintAlg, chunks[i]),
			Size: uint32(len(chunks[i])),
		}
	}
	rep.HandoffFastAllocs = allocsPerRun(10, func() { hnode.RestoreHandoff(chunks, seq, true) })
	rep.HandoffLegacyAllocs = allocsPerRun(10, func() {
		lnode.LegacyRestoreHandoff(hcfg.FingerprintAlg, chunks, seq, true)
	})

	// Residency: peak live heap while the pipeline streams a full
	// verify-restore through the bounded window.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	repo.Config.VerifyRestore = true
	hw := &heapPeakWriter{}
	rst, err := node.Restore(fileID, version, hw)
	repo.Config.VerifyRestore = false
	if err != nil {
		return nil, fmt.Errorf("restorefast: residency restore: %w", err)
	}
	rep.Residency = RestoreFastResidency{
		RestoredBytes: rst.Bytes,
		BaseHeapMiB:   float64(base.HeapAlloc) / (1 << 20),
		PeakHeapMiB:   float64(hw.peak) / (1 << 20),
	}
	if hw.peak > base.HeapAlloc {
		rep.Residency.PipelineMiB = float64(hw.peak-base.HeapAlloc) / (1 << 20)
	}
	return rep, nil
}

// runRestoreFast is the registered experiment: it prints the sweep and
// writes the BENCH_restorefast.json regression artifact (path via
// BENCH_RESTOREFAST_OUT).
func runRestoreFast(ctx context.Context, w io.Writer, s Scale) error {
	rep, err := RunRestoreFast(ctx, []int{1, 2, 4, 8}, s)
	if err != nil {
		return err
	}

	t := newTable(w, "Restore fast path: serial vs pooled parallel-verify pipeline (virtual MB/s)")
	t.row("policy", "verifyW", "serial virtual", "fast virtual", "speedup", "serial wall ms", "fast wall ms", "twin")
	for _, p := range rep.Points {
		twin := "ok"
		if !p.BytesMatch || !p.StatsMatch {
			twin = "MISMATCH"
		}
		t.row(p.Policy, fmt.Sprint(p.VerifyWorkers),
			f1(p.SerialVirtualMBps), f1(p.FastVirtualMBps), f2(p.VirtualSpeedup),
			f1(p.SerialWallMS), f1(p.FastWallMS), twin)
	}
	t.flush()
	fmt.Fprintf(w, "dense range restore: serial %.1f ms vs pipelined %.1f ms (elapsed match %v, bytes match %v)\n",
		rep.Dense.SerialMS, rep.Dense.FastMS, rep.Dense.ElapsedMatch, rep.Dense.BytesMatch)
	fmt.Fprintf(w, "hand-off allocs/pass: legacy %.1f, fast %.1f (%.0fx lean)\n",
		rep.HandoffLegacyAllocs, rep.HandoffFastAllocs,
		rep.HandoffLegacyAllocs/maxf(rep.HandoffFastAllocs, 1))
	fmt.Fprintf(w, "pipelined verify-restore of %s: peak live heap %.1f MiB (base %.1f MiB, pipeline +%.1f MiB)\n",
		mib(rep.Residency.RestoredBytes), rep.Residency.PeakHeapMiB,
		rep.Residency.BaseHeapMiB, rep.Residency.PipelineMiB)

	out := restorefastOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}
