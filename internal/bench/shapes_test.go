package bench

import (
	"context"
	"io"
	"testing"

	"slimstore/internal/core"
	"slimstore/internal/lnode"
	"slimstore/internal/workload"
)

// Shape regression tests: each locks in one headline claim of the paper so
// a change that silently breaks a reproduction property fails CI, not just
// drifts in slimbench output. They run at the 8 MiB scale (a few seconds).

func TestTable2Shape_PrefetchSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test")
	}
	gen := workload.New(workload.SDB(2, 8<<20))
	repo, ln, err := slimChain(gen, 1, 6, true)
	if err != nil {
		t.Fatal(err)
	}
	fileID := gen.FileIDs()[1]
	tput := map[int]float64{}
	for _, threads := range []int{0, 2, 6, 10} {
		st, err := restoreWith(repo, ln, fileID, 5, "fv", 8<<20, threads)
		if err != nil {
			t.Fatal(err)
		}
		tput[threads] = st.ThroughputMBps()
	}
	// Paper Table II: unprefetched slow; throughput ramps with threads and
	// saturates at the CPU-bound ceiling (~208 MB/s under DefaultCosts).
	if tput[0] > 60 {
		t.Errorf("unprefetched restore %1.f MB/s, want OSS-latency bound (<60)", tput[0])
	}
	if tput[2] < tput[0]*1.5 {
		t.Errorf("2 threads (%.1f) did not clearly beat 0 threads (%.1f)", tput[2], tput[0])
	}
	if tput[6] < tput[2] {
		t.Errorf("6 threads (%.1f) slower than 2 (%.1f)", tput[6], tput[2])
	}
	// Saturation: 10 threads gains < 15% over 6.
	if tput[10] > tput[6]*1.15 {
		t.Errorf("no saturation: 6 threads %.1f, 10 threads %.1f", tput[6], tput[10])
	}
	if tput[10] < 150 || tput[10] > 250 {
		t.Errorf("ceiling %.1f MB/s, want ~208 (calibration drift?)", tput[10])
	}
}

func TestFig8cShape_SCCStabilisesReadAmplification(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test")
	}
	gen := workload.New(workload.SDB(2, 8<<20))
	const versions = 8
	withSCC, lnA, err := slimChain(gen, 0, versions, true)
	if err != nil {
		t.Fatal(err)
	}
	noSCC, lnB, err := slimChain(gen, 0, versions, false)
	if err != nil {
		t.Fatal(err)
	}
	fileID := gen.FileIDs()[0]
	ampAt := func(repo *core.Repo, ln *lnode.LNode, v int) float64 {
		st, err := restoreWith(repo, ln, fileID, v, "fv", 8<<20, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cache.ReadAmplification()
	}
	// Paper Fig 8(c): without SCC read amplification keeps growing; with
	// SCC the newest version's amplification is lower than without.
	early := ampAt(noSCC, lnB, 1)
	late := ampAt(noSCC, lnB, versions-1)
	if late <= early {
		t.Errorf("no-SCC amplification did not grow: v1=%.0f v%d=%.0f", early, versions-1, late)
	}
	sccLate := ampAt(withSCC, lnA, versions-1)
	if sccLate >= late {
		t.Errorf("SCC did not help the newest version: %.0f vs %.0f", sccLate, late)
	}
}

func TestFig10Shape_ResticIndexCap(t *testing.T) {
	if testing.Short() {
		t.Skip("slow shape test")
	}
	var out io.Writer = io.Discard
	// The full driver asserts nothing; run the lightweight variant here by
	// checking the cap directly via the baseline's knobs in the driver.
	// (Executing the experiment exercises the whole path; the cap property
	// is asserted by TestResticRoundTripAndLockAccounting in baseline.)
	e, ok := ByID("fig10a")
	if !ok {
		t.Fatal("fig10a missing")
	}
	if err := e.Run(context.Background(), out, Scale{Files: 2, FileBytes: 2 << 20, Versions: 3}); err != nil {
		t.Fatal(err)
	}
}
