// Package bench regenerates every table and figure of the paper's
// evaluation (§VII). Each experiment is a named driver that builds its
// workload with internal/workload, runs SLIMSTORE and/or the baselines
// over the simulated OSS, and prints the same rows/series the paper
// reports. Absolute numbers depend on the calibrated cost model
// (internal/simclock); the shapes — who wins, by what factor, where the
// crossovers fall — are the reproduction targets (see EXPERIMENTS.md).
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/oss"
)

// Scale sizes an experiment's workload. Larger scales sharpen the curves
// at the cost of runtime.
type Scale struct {
	Files     int // files per dataset
	FileBytes int // initial bytes per file
	Versions  int // backup versions (capped by the dataset profile)
}

// SmallScale is fast enough for go test; MediumScale sharpens curves for
// the slimbench CLI.
var (
	SmallScale  = Scale{Files: 2, FileBytes: 8 << 20, Versions: 8}
	MediumScale = Scale{Files: 4, FileBytes: 16 << 20, Versions: 25}
	LargeScale  = Scale{Files: 8, FileBytes: 32 << 20, Versions: 25}
)

// Experiment is one reproducible table or figure. Run receives the
// caller's context — the entry point (slimbench's main, a test) owns the
// root, and experiments that drive the job engine forward it, so a
// cancelled bench run cancels its queued jobs instead of minting fresh
// context.Background() roots mid-harness.
type Experiment struct {
	ID    string // e.g. "fig5a", "table2"
	Title string // the paper's caption
	Run   func(ctx context.Context, w io.Writer, s Scale) error
}

// registry of all experiments, in paper order.
var registry []Experiment

func register(id, title string, run func(context.Context, io.Writer, Scale) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// All returns every experiment in paper order.
func All() []Experiment { return append([]Experiment(nil), registry...) }

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists the registered experiment IDs.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for _, e := range registry {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Output helpers.

// table renders aligned experiment output.
type table struct {
	w   *tabwriter.Writer
	out io.Writer
}

func newTable(w io.Writer, title string) *table {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	return &table{w: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0), out: w}
}

func (t *table) row(cells ...string) {
	fmt.Fprintln(t.w, strings.Join(cells, "\t"))
}

func (t *table) rowf(format string, args ...any) {
	fmt.Fprintf(t.w, format+"\n", args...)
}

func (t *table) flush() { t.w.Flush() }

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

func gib(v int64) string { return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30)) }
func mib(v int64) string { return fmt.Sprintf("%.1f MiB", float64(v)/(1<<20)) }

// ---------------------------------------------------------------------------
// Shared setup helpers.

// benchConfig returns the paper's configuration scaled to experiment
// sizes (small containers/segments so fragmentation happens at MBs, not
// TBs).
func benchConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 512 << 10
	cfg.SegmentChunks = 512
	cfg.MaxSuperChunkBytes = 128 << 10
	cfg.CacheMemBytes = 64 << 20
	cfg.CacheDiskBytes = 256 << 20
	cfg.LAWChunks = 1024
	cfg.PrefetchThreads = 6
	return cfg
}

func newSystemStore() (*core.Repo, *oss.Mem, error) {
	mem := oss.NewMem()
	repo, err := core.OpenRepo(mem, benchConfig())
	if err != nil {
		return nil, nil, err
	}
	return repo, mem, nil
}

func clampVersions(s Scale, max int) int {
	v := s.Versions
	if v > max {
		v = max
	}
	if v < 2 {
		v = 2
	}
	return v
}
