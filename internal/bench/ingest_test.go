package bench

import (
	"context"
	"runtime"
	"testing"
)

// TestIngestRegression is the BENCH_ingest.json gate:
//   - virtual-time ingest on unique data at 4 workers must be >= 2x the
//     legacy pipeline (the deterministic pipeline-model claim);
//   - the pooled hand-off must allocate >= 10x less per pass than the
//     legacy materialize-everything hand-off;
//   - both pipelines must store identical bytes and chunk counts;
//   - streaming residency must stay far below the input size;
//   - wall-clock speedup is asserted only on hosts with enough cores
//     (goroutines interleave rather than parallelise on 1-2 cores).
func TestIngestRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-configuration ingest sweep")
	}
	rep, err := RunIngest(context.Background(), []int{1, 4}, 8<<20, 64<<20)
	if err != nil {
		t.Fatal(err)
	}

	var w4 *IngestPoint
	for i := range rep.Points {
		if rep.Points[i].Workers == 4 {
			w4 = &rep.Points[i]
		}
		if !rep.Points[i].StoredBytesMatch {
			t.Errorf("w=%d: legacy and fast pipelines stored different bytes/chunks", rep.Points[i].Workers)
		}
	}
	if w4 == nil {
		t.Fatal("no 4-worker point")
	}

	// Deterministic: the virtual pipeline model must show >= 2x at 4
	// workers (measured ~4x: the legacy serial composition is write-bound,
	// the fast pipeline overlaps writes across the pack workers).
	if w4.FastVirtualMBps < 2*w4.LegacyVirtualMBps {
		t.Errorf("virtual ingest at 4 workers: fast %.1f MB/s < 2x legacy %.1f MB/s",
			w4.FastVirtualMBps, w4.LegacyVirtualMBps)
	}

	// Streaming residency: input must dwarf peak live heap.
	if rep.Stream.InputOverRes < 1.5 {
		t.Errorf("streaming ingest resident %.1f MiB is not O(window) for a %d MiB stream",
			rep.Stream.PeakHeapMiB, rep.Stream.Bytes>>20)
	}

	if benchRace {
		t.Log("allocation and wall-clock gates skipped under -race (instrumented counts)")
		return
	}
	if rep.HandoffFastAllocs*10 > rep.HandoffLegacyAllocs {
		t.Errorf("hand-off allocs: fast %.1f/pass is not 10x below legacy %.1f/pass",
			rep.HandoffFastAllocs, rep.HandoffLegacyAllocs)
	}
	if runtime.NumCPU() >= 4 {
		if w4.FastWallMBps < 2*w4.LegacyWallMBps {
			t.Errorf("wall ingest at 4 workers: fast %.1f MB/s < 2x legacy %.1f MB/s",
				w4.FastWallMBps, w4.LegacyWallMBps)
		}
	} else {
		t.Logf("wall-clock gate skipped on %d-CPU host: fast %.1f MB/s vs legacy %.1f MB/s",
			runtime.NumCPU(), w4.FastWallMBps, w4.LegacyWallMBps)
	}
}
