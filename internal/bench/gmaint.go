package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"time"

	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/fingerprint"
	"slimstore/internal/globalindex"
	"slimstore/internal/gnode"
	"slimstore/internal/oss"
)

func init() {
	register("gmaint", "G-node maintenance: wall-clock reverse-dedup and scrub scaling by worker count", runGMaint)
}

// Dataset shape: two generations of containers. The old generation is
// registered in the global index (a previous maintenance pass); the new
// generation duplicates half of its chunks, so reverse dedup marks old
// copies, repoints the index, and rewrites the old containers it pushed
// past the stale threshold. Small chunks keep the dataset CPU-light: the
// experiment measures request-level concurrency, not checksum throughput.
const (
	gmOldContainers = 48
	gmNewContainers = 48
	gmChunksPer     = 24
	gmChunkBytes    = 2048
)

// GMaintPoint is one row of the maintenance-scaling sweep.
type GMaintPoint struct {
	Workers int `json:"workers"`

	ReverseWallMS   float64 `json:"reverse_wall_ms"`
	ReverseContSec  float64 `json:"reverse_containers_per_sec"`
	ReverseSpeedup  float64 `json:"reverse_speedup"` // vs the 1-worker row
	ScrubWallMS     float64 `json:"scrub_wall_ms"`
	ScrubContSec    float64 `json:"scrub_containers_per_sec"`
	ScrubSpeedup    float64 `json:"scrub_speedup"` // vs the 1-worker row
	ChunksScanned   int     `json:"chunks_scanned"`
	DupsRemoved     int     `json:"duplicates_removed"`
	IndexInserts    int     `json:"index_inserts"`
	Rewritten       int     `json:"containers_rewritten"`
	ChunksVerified  int     `json:"chunks_verified"`
	ScrubContainers int     `json:"scrub_containers_scanned"`
}

// GMaintReport is the BENCH_gmaint.json schema: the regression artifact
// pinning how G-node maintenance wall-clock scales with MaintWorkers.
type GMaintReport struct {
	Experiment string `json:"experiment"`
	// HostCPUs contextualises the wall columns. The per-op latency below
	// makes the sweep meaningful even on one core: workers overlap
	// *request latency* (timer sleeps), not CPU, exactly like concurrent
	// OSS channels.
	HostCPUs       int           `json:"host_cpus"`
	PerOpLatencyUS int64         `json:"per_op_latency_us"`
	OldContainers  int           `json:"old_containers"`
	NewContainers  int           `json:"new_containers"`
	ChunksPer      int           `json:"chunks_per_container"`
	Points         []GMaintPoint `json:"points"`
}

// gmaintOutPath decides where the JSON artifact lands; BENCH_GMAINT_OUT
// overrides the default (BENCH_gmaint.json in the working directory).
func gmaintOutPath() string {
	//slimlint:ignore determinism BENCH_GMAINT_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_GMAINT_OUT"); p != "" {
		return p
	}
	return "BENCH_gmaint.json"
}

// buildGMaintRepo populates mem (latency-free: setup is not measured)
// with the two container generations and returns the new-generation IDs
// in backup order. Identically seeded for every worker count, so each
// sweep point does exactly the same logical work.
func buildGMaintRepo(mem *oss.Mem, cfg core.Config) ([]container.ID, error) {
	repo, err := core.OpenRepo(mem, cfg)
	if err != nil {
		return nil, err
	}
	cs := repo.Containers
	rng := rand.New(rand.NewSource(42))

	type chunk struct {
		fp   fingerprint.FP
		data []byte
	}
	mkChunk := func() chunk {
		data := make([]byte, gmChunkBytes)
		rng.Read(data)
		return chunk{fingerprint.Of(cfg.FingerprintAlg, data), data}
	}

	// Old generation, every chunk registered in the global index.
	b := container.NewBuilder(cs)
	oldChunks := make([]chunk, 0, gmOldContainers*gmChunksPer)
	entries := make([]globalindex.Entry, 0, gmOldContainers*gmChunksPer)
	for i := 0; i < gmOldContainers*gmChunksPer; i++ {
		c := mkChunk()
		id, err := b.Add(c.fp, c.data)
		if err != nil {
			return nil, err
		}
		oldChunks = append(oldChunks, c)
		entries = append(entries, globalindex.Entry{FP: c.fp, ID: id})
	}
	if err := b.Flush(); err != nil {
		return nil, err
	}
	if err := repo.Global.PutBatch(entries); err != nil {
		return nil, err
	}
	if err := repo.Global.Flush(); err != nil {
		return nil, err
	}

	// New generation: every second chunk repeats an old chunk (sampled
	// without replacement — each duplicate marks a distinct old copy),
	// leaving every old container ~50% stale, past the rewrite threshold.
	perm := rng.Perm(len(oldChunks))
	di := 0
	nb := container.NewBuilder(cs)
	var newIDs []container.ID
	seen := make(map[container.ID]bool)
	for i := 0; i < gmNewContainers*gmChunksPer; i++ {
		var c chunk
		if i%2 == 0 {
			c = oldChunks[perm[di]]
			di++
		} else {
			c = mkChunk()
		}
		id, err := nb.Add(c.fp, c.data)
		if err != nil {
			return nil, err
		}
		if !seen[id] {
			seen[id] = true
			newIDs = append(newIDs, id)
		}
	}
	if err := nb.Flush(); err != nil {
		return nil, err
	}
	return newIDs, nil
}

// RunGMaint measures wall-clock reverse dedup and scrub over identical
// datasets at each worker count, with perOp of real latency injected
// under every OSS request (oss.Latency). Stats columns must be identical
// across rows — parallelism changes only the wall clock.
func RunGMaint(workerCounts []int, perOp time.Duration) (*GMaintReport, error) {
	rep := &GMaintReport{
		Experiment:     "gmaint",
		HostCPUs:       runtime.NumCPU(),
		PerOpLatencyUS: perOp.Microseconds(),
		OldContainers:  gmOldContainers,
		NewContainers:  gmNewContainers,
		ChunksPer:      gmChunksPer,
	}
	for _, w := range workerCounts {
		cfg := core.DefaultConfig()
		cfg.ContainerCapacity = gmChunksPer * gmChunkBytes
		mem := oss.NewMem()
		newIDs, err := buildGMaintRepo(mem, cfg)
		if err != nil {
			return nil, fmt.Errorf("gmaint: build dataset: %w", err)
		}

		cfg.MaintWorkers = w
		repo, err := core.OpenRepo(&oss.Latency{S: mem, PerOp: perOp}, cfg)
		if err != nil {
			return nil, fmt.Errorf("gmaint: reopen with latency: %w", err)
		}
		g := gnode.New(repo)

		//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep pins maintenance speedup on real cores
		start := time.Now()
		rd, err := g.ReverseDedup(newIDs)
		//slimlint:ignore determinism wall-clock is the measured quantity here
		rdWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("gmaint: reverse dedup (%d workers): %w", w, err)
		}
		//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep pins maintenance speedup on real cores
		start = time.Now()
		sc, err := g.Scrub()
		//slimlint:ignore determinism wall-clock is the measured quantity here
		scWall := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("gmaint: scrub (%d workers): %w", w, err)
		}
		if !sc.Clean() {
			return nil, fmt.Errorf("gmaint: scrub found damage on a clean dataset: %+v", sc)
		}

		pt := GMaintPoint{
			Workers:         w,
			ReverseWallMS:   float64(rdWall.Microseconds()) / 1e3,
			ReverseContSec:  float64(rd.ContainersScanned) / rdWall.Seconds(),
			ScrubWallMS:     float64(scWall.Microseconds()) / 1e3,
			ScrubContSec:    float64(sc.ContainersScanned) / scWall.Seconds(),
			ChunksScanned:   rd.ChunksScanned,
			DupsRemoved:     rd.DuplicatesRemoved,
			IndexInserts:    rd.IndexInserts,
			Rewritten:       rd.ContainersRewritten,
			ChunksVerified:  sc.ChunksVerified,
			ScrubContainers: sc.ContainersScanned,
		}
		base := pt
		if len(rep.Points) > 0 {
			base = rep.Points[0]
		}
		pt.ReverseSpeedup = base.ReverseWallMS / pt.ReverseWallMS
		pt.ScrubSpeedup = base.ScrubWallMS / pt.ScrubWallMS
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// runGMaint is the registered experiment: it prints the sweep and writes
// the BENCH_gmaint.json regression artifact (path via BENCH_GMAINT_OUT).
func runGMaint(ctx context.Context, w io.Writer, _ Scale) error {
	rep, err := RunGMaint([]int{1, 2, 4, 8}, 250*time.Microsecond)
	if err != nil {
		return err
	}

	t := newTable(w, "G-node maintenance: wall-clock scaling by MaintWorkers (250µs/op OSS latency)")
	t.row("workers", "reverse ms", "reverse ctr/s", "speedup", "scrub ms", "scrub ctr/s", "speedup")
	for _, p := range rep.Points {
		t.row(fmt.Sprint(p.Workers),
			f1(p.ReverseWallMS), f1(p.ReverseContSec), f2(p.ReverseSpeedup),
			f1(p.ScrubWallMS), f1(p.ScrubContSec), f2(p.ScrubSpeedup))
	}
	t.flush()
	last := rep.Points[len(rep.Points)-1]
	fmt.Fprintf(w, "reverse-dedup work per pass: %d chunks scanned, %d duplicates removed, %d containers rewritten\n",
		last.ChunksScanned, last.DupsRemoved, last.Rewritten)

	out := gmaintOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}
