package bench

import (
	"context"
	"fmt"
	"io"

	"slimstore/internal/baseline"
	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
	"slimstore/internal/workload"
)

func init() {
	register("fig8ab", "Fig 8(a,b): restore caches (FV vs OPT vs ALACC), vary cache size", runFig8ab)
	register("fig8c", "Fig 8(c): SCC+FV vs HAR+OPT read amplification", runFig8c)
	register("fig8d", "Fig 8(d): LAW-based prefetching restore throughput", runFig8d)
	register("table2", "Table II: restore throughput vs prefetching thread number", runTable2)
}

// slimChain backs up `versions` of one workload file, optionally running
// the G-node optimisation (reverse dedup + SCC) after every backup. It
// returns the repo and L-node for restores.
func slimChain(gen *workload.Generator, fileIdx, versions int, optimize bool) (*core.Repo, *lnode.LNode, error) {
	cfg := benchConfig()
	repo, err := core.OpenRepo(oss.NewMem(), cfg)
	if err != nil {
		return nil, nil, err
	}
	ln := lnode.New(repo, "L0")
	gn := gnode.New(repo)
	fileID := gen.FileIDs()[fileIdx]
	err = gen.VersionSeq(fileIdx, func(v int, data []byte) error {
		if v >= versions {
			return errDone
		}
		st, err := ln.Backup(fileID, data)
		if err != nil {
			return err
		}
		if optimize {
			if _, err := gn.ReverseDedup(st.NewContainers); err != nil {
				return err
			}
			if _, err := gn.CompactSparse(fileID, v, st.SparseContainers); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil && err != errDone {
		return nil, nil, err
	}
	return repo, ln, nil
}

// restoreWith restores one version under the given policy/cache/threads by
// mutating the repo's restore configuration (bench runs are
// single-threaded, so this is safe).
func restoreWith(repo *core.Repo, ln *lnode.LNode, fileID string, version int,
	policy string, memBytes int64, threads int) (*lnode.RestoreStats, error) {
	repo.Config.RestorePolicy = policy
	repo.Config.CacheMemBytes = memBytes
	repo.Config.PrefetchThreads = threads
	return ln.Restore(fileID, version, io.Discard)
}

func runFig8ab(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 25)
	fileIdx := 0 // lowest dup ratio → most churn → most fragmentation
	repo, ln, err := slimChain(gen, fileIdx, versions, false)
	if err != nil {
		return err
	}
	fileID := gen.FileIDs()[fileIdx]

	// Cache sizes scaled to the workload (the paper's 256 MB–1 GiB range
	// maps to a fraction of the file size here).
	small := int64(s.FileBytes) / 8
	large := int64(s.FileBytes)
	t := newTable(w, "Fig 8(a,b): containers read per 100MB and restore MB/s (no prefetch)")
	t.row("cache", "ver", "fv reads", "opt reads", "alacc reads", "fv MB/s", "opt MB/s", "alacc MB/s")
	for _, mem := range []int64{small, large} {
		for v := 0; v < versions; v += versionStep(versions) {
			var reads [3]string
			var tput [3]string
			for i, policy := range []string{"fv", "opt", "alacc"} {
				st, err := restoreWith(repo, ln, fileID, v, policy, mem, 0)
				if err != nil {
					return err
				}
				reads[i] = f1(st.Cache.ReadAmplification())
				tput[i] = f1(st.ThroughputMBps())
			}
			t.row(mib(mem), fmt.Sprint(v), reads[0], reads[1], reads[2], tput[0], tput[1], tput[2])
		}
	}
	t.flush()
	return nil
}

// versionStep thins long version series for readable output.
func versionStep(versions int) int {
	if versions > 12 {
		return versions / 12
	}
	return 1
}

func runFig8c(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 25)
	fileIdx := 0
	fileID := gen.FileIDs()[fileIdx]
	costs := simclock.DefaultCosts()

	// Chain A: SLIMSTORE with SCC; restore via FV.
	repo, ln, err := slimChain(gen, fileIdx, versions, true)
	if err != nil {
		return err
	}
	// Chain B: SLIMSTORE without SCC (shows unbounded amplification).
	repoN, lnN, err := slimChain(gen, fileIdx, versions, false)
	if err != nil {
		return err
	}
	// Chain C: HAR (rewrites next version); restore via OPT cache.
	har, err := baseline.NewHAR(oss.NewMem(), costs, chunker.ParamsForAvg(4<<10),
		benchConfig().ContainerCapacity, 0.3)
	if err != nil {
		return err
	}
	err = gen.VersionSeq(fileIdx, func(v int, data []byte) error {
		if v >= versions {
			return errDone
		}
		_, err := har.BackupHAR(fileID, data)
		return err
	})
	if err != nil && err != errDone {
		return err
	}

	mem := int64(s.FileBytes) // the paper's "large cache" regime
	t := newTable(w, "Fig 8(c): containers read per 100MB (large cache)")
	t.row("ver", "scc+fv", "no-scc+fv", "har+opt", "scc MB/s", "har MB/s")
	for v := 0; v < versions; v += versionStep(versions) {
		a, err := restoreWith(repo, ln, fileID, v, "fv", mem, 0)
		if err != nil {
			return err
		}
		b, err := restoreWith(repoN, lnN, fileID, v, "fv", mem, 0)
		if err != nil {
			return err
		}
		seq, err := har.Sequence(fileID, v)
		if err != nil {
			return err
		}
		acct := simclock.NewAccount()
		opt := cache.NewOPT(cache.Config{MemBytes: mem, LAW: benchConfig().LAWChunks})
		cst, err := opt.Restore(seq, har.Fetcher(acct), func(d []byte) error {
			acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(d)), costs.RestorePerByte)
			return nil
		})
		if err != nil {
			return err
		}
		harTput := simclock.ThroughputMBps(cst.LogicalBytes, acct.ElapsedSequential())
		t.row(fmt.Sprint(v), f1(a.Cache.ReadAmplification()), f1(b.Cache.ReadAmplification()),
			f1(cst.ReadAmplification()), f1(a.ThroughputMBps()), f1(harTput))
	}
	t.flush()
	return nil
}

func runFig8d(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 25)
	fileIdx := 0
	fileID := gen.FileIDs()[fileIdx]
	costs := simclock.DefaultCosts()

	repo, ln, err := slimChain(gen, fileIdx, versions, true)
	if err != nil {
		return err
	}
	repoN, lnN, err := slimChain(gen, fileIdx, versions, false)
	if err != nil {
		return err
	}
	har, err := baseline.NewHAR(oss.NewMem(), costs, chunker.ParamsForAvg(4<<10),
		benchConfig().ContainerCapacity, 0.3)
	if err != nil {
		return err
	}
	err = gen.VersionSeq(fileIdx, func(v int, data []byte) error {
		if v >= versions {
			return errDone
		}
		_, err := har.BackupHAR(fileID, data)
		return err
	})
	if err != nil && err != errDone {
		return err
	}

	mem := int64(s.FileBytes)
	t := newTable(w, "Fig 8(d): restore throughput (MB/s), SCC+FV+LAW prefetch vs baselines")
	t.row("ver", "scc+fv+law", "har+opt", "alacc", "vs har", "vs alacc")
	for v := 0; v < versions; v += versionStep(versions) {
		a, err := restoreWith(repo, ln, fileID, v, "fv", mem, 6)
		if err != nil {
			return err
		}
		// HAR + OPT, sequential reads.
		seq, err := har.Sequence(fileID, v)
		if err != nil {
			return err
		}
		acct := simclock.NewAccount()
		opt := cache.NewOPT(cache.Config{MemBytes: mem, LAW: benchConfig().LAWChunks})
		cst, err := opt.Restore(seq, har.Fetcher(acct), func(d []byte) error {
			acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(d)), costs.RestorePerByte)
			return nil
		})
		if err != nil {
			return err
		}
		harTput := simclock.ThroughputMBps(cst.LogicalBytes, acct.ElapsedSequential())
		// ALACC on the un-compacted layout, sequential reads.
		c, err := restoreWith(repoN, lnN, fileID, v, "alacc", mem, 0)
		if err != nil {
			return err
		}
		t.row(fmt.Sprint(v), f1(a.ThroughputMBps()), f1(harTput), f1(c.ThroughputMBps()),
			f2(a.ThroughputMBps()/harTput), f2(a.ThroughputMBps()/c.ThroughputMBps()))
	}
	t.flush()
	return nil
}

func runTable2(ctx context.Context, w io.Writer, s Scale) error {
	gen := workload.New(workload.SDB(s.Files, s.FileBytes))
	versions := clampVersions(s, 8)
	fileIdx := s.Files / 2
	fileID := gen.FileIDs()[fileIdx]
	repo, ln, err := slimChain(gen, fileIdx, versions, true)
	if err != nil {
		return err
	}
	t := newTable(w, "Table II: restore throughput (MB/s) vs prefetching threads")
	t.row("threads", "restore MB/s")
	for _, threads := range []int{0, 1, 2, 4, 6, 8, 10} {
		st, err := restoreWith(repo, ln, fileID, versions-1, "fv", int64(s.FileBytes), threads)
		if err != nil {
			return err
		}
		t.row(fmt.Sprint(threads), f1(st.ThroughputMBps()))
	}
	t.flush()
	return nil
}
