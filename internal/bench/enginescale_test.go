package bench

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// TestMain diverts the artifact-writing experiments (BENCH_scale.json
// via BENCH_OUT, BENCH_gmaint.json via BENCH_GMAINT_OUT; both default to
// the working directory) so `go test` — which runs every registered
// experiment — never drops artifacts into the source tree.
func TestMain(m *testing.M) {
	if os.Getenv("BENCH_OUT") == "" {
		os.Setenv("BENCH_OUT", filepath.Join(os.TempDir(), "BENCH_scale.json"))
	}
	if os.Getenv("BENCH_GMAINT_OUT") == "" {
		os.Setenv("BENCH_GMAINT_OUT", filepath.Join(os.TempDir(), "BENCH_gmaint.json"))
	}
	os.Exit(m.Run())
}

// TestEngineScaleRegression is the bench-regression gate for the
// concurrent engine: a small sweep must complete, produce a well-formed
// ScaleReport (the BENCH_scale.json schema), and show aggregate backup
// throughput scaling with L-node count — exactly in the virtual-time
// model everywhere, and in real wall-clock on hosts with cores to scale
// onto.
func TestEngineScaleRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("slow bench sweep")
	}
	rep, err := RunEngineScale(context.Background(), []int{1, 4}, 2, 2<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	one, four := rep.Points[0], rep.Points[1]
	for _, p := range rep.Points {
		if p.Jobs != p.LNodes*2 {
			t.Errorf("%d L-nodes ran %d jobs, want %d", p.LNodes, p.Jobs, p.LNodes*2)
		}
		if p.BackupWallMBps <= 0 || p.BackupVirtualMBps <= 0 ||
			p.RestoreWallMBps <= 0 || p.RestoreVirtualMBps <= 0 {
			t.Errorf("%d L-nodes: non-positive throughput: %+v", p.LNodes, p)
		}
		if p.BackupBytes != int64(p.Jobs)*int64(rep.FileBytes) {
			t.Errorf("%d L-nodes: backed up %d bytes, want %d", p.LNodes, p.BackupBytes, int64(p.Jobs)*int64(rep.FileBytes))
		}
	}

	// The virtual model composes per-node serial / cross-node parallel,
	// so 4 L-nodes must deliver well over 2x the single-node aggregate
	// regardless of host hardware.
	if ratio := four.BackupVirtualMBps / one.BackupVirtualMBps; ratio < 2 {
		t.Errorf("virtual backup throughput scaled only %.2fx from 1 to 4 L-nodes", ratio)
	}

	// Real wall-clock scaling needs real cores; with them, a flat curve
	// means the engine serialised somewhere it must not (a regression
	// this test exists to catch). Modest threshold: the shared substrate
	// legitimately costs some contention.
	if runtime.NumCPU() >= 4 {
		if ratio := four.BackupWallMBps / one.BackupWallMBps; ratio < 1.2 {
			t.Errorf("wall-clock backup throughput scaled only %.2fx from 1 to 4 L-nodes on %d CPUs",
				ratio, runtime.NumCPU())
		}
	} else {
		t.Logf("host has %d CPUs; wall-clock scaling not asserted (backup 1→4 L-nodes: %.2fx)",
			runtime.NumCPU(), four.BackupWallMBps/one.BackupWallMBps)
	}
}
