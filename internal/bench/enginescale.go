package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/jobs"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
	"slimstore/internal/workload"
)

func init() {
	register("scale", "Engine scaling: real wall-clock vs virtual-time throughput by L-node count", runEngineScale)
}

// ScalePoint is one row of the engine-scaling sweep: aggregate backup and
// restore throughput for a given L-node count, in both real wall-clock
// MB/s (the goroutine engine on this host) and virtual MB/s (the
// simclock cost model, composed as per-node serial / cross-node parallel;
// see DESIGN.md §7).
type ScalePoint struct {
	LNodes int `json:"lnodes"`
	Jobs   int `json:"jobs"`

	BackupBytes       int64   `json:"backup_bytes"`
	BackupWallMS      float64 `json:"backup_wall_ms"`
	BackupWallMBps    float64 `json:"backup_wall_mbps"`
	BackupVirtualMBps float64 `json:"backup_virtual_mbps"`

	RestoreBytes       int64   `json:"restore_bytes"`
	RestoreWallMS      float64 `json:"restore_wall_ms"`
	RestoreWallMBps    float64 `json:"restore_wall_mbps"`
	RestoreVirtualMBps float64 `json:"restore_virtual_mbps"`
}

// ScaleReport is the BENCH_scale.json schema: the bench-regression
// artifact pinning how engine throughput scales with L-node count.
type ScaleReport struct {
	Experiment  string `json:"experiment"`
	JobsPerNode int    `json:"jobs_per_node"`
	FileBytes   int    `json:"file_bytes"`
	// HostCPUs contextualises the wall-clock columns: on a single-core
	// host the wall curve is flat (goroutines interleave, they don't
	// parallelise) while the virtual-time curve still shows the model's
	// scaling.
	HostCPUs int          `json:"host_cpus"`
	Points   []ScalePoint `json:"points"`
}

// scaleOutPath decides where the JSON artifact lands; BENCH_OUT overrides
// the default (BENCH_scale.json in the working directory).
func scaleOutPath() string {
	//slimlint:ignore determinism BENCH_OUT only picks where the artifact file lands; it never affects measured results
	if p := os.Getenv("BENCH_OUT"); p != "" {
		return p
	}
	return "BENCH_scale.json"
}

// RunEngineScale sweeps the concurrent job engine over lnodeCounts,
// backing up (then restoring) jobsPerNode fresh files per L-node through
// jobs.Engine, and reports aggregate throughput per round. Each round
// uses a fresh repo so rounds are independent: all data is unique, which
// makes backup cost hash-dominated and the sweep a clean measure of how
// the engine scales on real cores. ctx cancels job submission between
// rounds (a started job runs to completion, per the engine's job model).
func RunEngineScale(ctx context.Context, lnodeCounts []int, jobsPerNode, fileBytes int) (*ScaleReport, error) {
	rep := &ScaleReport{
		Experiment:  "scale",
		JobsPerNode: jobsPerNode,
		FileBytes:   fileBytes,
		HostCPUs:    runtime.NumCPU(),
	}
	for _, n := range lnodeCounts {
		nJobs := n * jobsPerNode
		gen := workload.New(workload.RData(nJobs, fileBytes))
		cfg := benchConfig()
		// Keep each job single-threaded so the sweep isolates cross-node
		// scaling: with the intra-job worker pools on, a single L-node
		// already saturates the host's cores and flattens the curve.
		cfg.HashWorkers = 1
		cfg.PackWorkers = 1
		repo, err := core.OpenRepo(oss.NewMem(), cfg)
		if err != nil {
			return nil, err
		}
		eng := jobs.New(repo, gnode.New(repo), jobs.Options{LNodes: n, Queue: nJobs})

		backups := make([]jobs.Job, nJobs)
		for j := range backups {
			backups[j] = jobs.Job{Kind: jobs.Backup, FileID: gen.FileIDs()[j], Data: gen.Base(j)}
		}
		pt := ScalePoint{LNodes: n, Jobs: nJobs}
		//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host throughput next to the virtual model
		start := time.Now()
		results := eng.Run(ctx, backups)
		//slimlint:ignore determinism wall-clock is the measured quantity here
		wall := time.Since(start)
		var virtual time.Duration
		for _, r := range results {
			if r.Err != nil {
				eng.Close()
				return nil, fmt.Errorf("scale: backup on %d L-nodes: %w", n, r.Err)
			}
			pt.BackupBytes += r.Backup.LogicalBytes
			virtual += r.Backup.Elapsed
		}
		pt.BackupWallMS = float64(wall.Microseconds()) / 1e3
		pt.BackupWallMBps = simclock.ThroughputMBps(pt.BackupBytes, wall)
		// Virtual composition: jobs on one L-node serialise, L-nodes run
		// in parallel — aggregate virtual elapsed is the per-node share of
		// the summed per-job virtual times (balanced assignment).
		pt.BackupVirtualMBps = simclock.ThroughputMBps(pt.BackupBytes, virtual/time.Duration(n))

		restores := make([]jobs.Job, nJobs)
		for j := range restores {
			restores[j] = jobs.Job{Kind: jobs.Restore, FileID: gen.FileIDs()[j], Version: 0}
		}
		//slimlint:ignore determinism the wall-clock columns ARE the measurement: this sweep reports host throughput next to the virtual model
		start = time.Now()
		results = eng.Run(ctx, restores)
		//slimlint:ignore determinism wall-clock is the measured quantity here
		wall = time.Since(start)
		virtual = 0
		for _, r := range results {
			if r.Err != nil {
				eng.Close()
				return nil, fmt.Errorf("scale: restore on %d L-nodes: %w", n, r.Err)
			}
			pt.RestoreBytes += r.Restore.Bytes
			virtual += r.Restore.Elapsed
		}
		pt.RestoreWallMS = float64(wall.Microseconds()) / 1e3
		pt.RestoreWallMBps = simclock.ThroughputMBps(pt.RestoreBytes, wall)
		pt.RestoreVirtualMBps = simclock.ThroughputMBps(pt.RestoreBytes, virtual/time.Duration(n))

		eng.Close()
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// runEngineScale is the registered experiment: it prints the sweep and
// writes the BENCH_scale.json regression artifact (path via BENCH_OUT).
func runEngineScale(ctx context.Context, w io.Writer, s Scale) error {
	rep, err := RunEngineScale(ctx, []int{1, 2, 4, 6, 8}, 2, s.FileBytes/4)
	if err != nil {
		return err
	}

	t := newTable(w, "Engine scaling: aggregate throughput (MB/s) vs L-node count")
	t.row("l-nodes", "jobs", "backup wall", "backup virtual", "restore wall", "restore virtual")
	base := rep.Points[0]
	for _, p := range rep.Points {
		t.row(fmt.Sprint(p.LNodes), fmt.Sprint(p.Jobs),
			f1(p.BackupWallMBps), f1(p.BackupVirtualMBps),
			f1(p.RestoreWallMBps), f1(p.RestoreVirtualMBps))
	}
	t.flush()
	last := rep.Points[len(rep.Points)-1]
	fmt.Fprintf(w, "wall-clock backup speedup %d→%d L-nodes: %.2fx (virtual model: %.2fx)\n",
		base.LNodes, last.LNodes,
		last.BackupWallMBps/base.BackupWallMBps,
		last.BackupVirtualMBps/base.BackupVirtualMBps)

	out := scaleOutPath()
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", out)
	return nil
}
