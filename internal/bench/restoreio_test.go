package bench

import (
	"context"
	"encoding/json"
	"testing"
)

// TestRestoreIORegression is the perf gate for the node-level restore I/O
// layer. Every column it checks is virtual time or modelled OSS traffic,
// so the floors are deterministic — no host-speed slack needed. Twin
// equivalence (every concurrent restore bit-identical to the serial
// baseline) is enforced inside the runner: a mismatch fails the run, and
// `go test -race` runs this whole sweep under the race detector.
func TestRestoreIORegression(t *testing.T) {
	rep, err := RunRestoreIO(context.Background(), []int{16 << 10, 0}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
	if len(rep.Sparse) != 2 || len(rep.Overlap) != 1 {
		t.Fatalf("unexpected report shape: %d sparse, %d overlap", len(rep.Sparse), len(rep.Overlap))
	}

	// Sparse shape: the planner must beat full container GETs by >= 1.5x
	// in virtual time AND in OSS bytes (measured ~3.2x / ~10x).
	sparse := rep.Sparse[0]
	if sparse.RangedReads == 0 || sparse.RangedSpans == 0 {
		t.Fatalf("planner never chose ranged reads on the sparse shape: %+v", sparse)
	}
	if sparse.Speedup < 1.5 {
		t.Errorf("sparse restore speedup = %.2fx (full %.1fms, ranged %.1fms), want >= 1.5x",
			sparse.Speedup, sparse.FullMS, sparse.RangedMS)
	}
	if sparse.ByteReduction < 1.5 {
		t.Errorf("sparse restore byte reduction = %.2fx (full %d, ranged %d), want >= 1.5x",
			sparse.ByteReduction, sparse.FullOSSBytes, sparse.RangedOSSBytes)
	}

	// Dense control: a full restore needs every chunk, the planner must
	// fall back to full GETs, and enabling it must cost nothing.
	dense := rep.Sparse[1]
	if dense.RangedSpans != 0 {
		t.Errorf("planner issued %d ranged spans on a dense full restore", dense.RangedSpans)
	}
	if dense.Speedup < 0.99 || dense.Speedup > 1.01 {
		t.Errorf("dense control speedup = %.3fx (full %.1fms, ranged %.1fms), want 1.0x",
			dense.Speedup, dense.FullMS, dense.RangedMS)
	}

	// Overlapping concurrent shape: shared cache + singleflight must cut
	// base-store traffic >= 1.5x vs per-job fetching (measured: exactly
	// the job count, 4x).
	ov := rep.Overlap[0]
	if ov.SharedHits+ov.SharedJoins == 0 {
		t.Fatalf("concurrent restores never shared a fetch: %+v", ov)
	}
	if ov.GetReduction < 1.5 {
		t.Errorf("OSS GET reduction = %.2fx (%d per-job, %d shared), want >= 1.5x",
			ov.GetReduction, ov.PerJobGets, ov.SharedGets)
	}
	if ov.ByteReduction < 1.5 {
		t.Errorf("OSS byte reduction = %.2fx (%d per-job, %d shared), want >= 1.5x",
			ov.ByteReduction, ov.PerJobBytes, ov.SharedBytes)
	}
}
