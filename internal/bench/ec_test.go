package bench

import (
	"testing"
)

// TestECRegression gates the BENCH_ec.json frontier: the RS stripe must
// beat naive (1+M)-replication on storage at equal fault tolerance, every
// scheme must survive its full outage envelope with byte-identical
// restores, and the degraded-read latency penalty must stay bounded.
func TestECRegression(t *testing.T) {
	rep, err := RunECBench()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ECSchemePoint{}
	for _, p := range rep.Schemes {
		byName[p.Scheme] = p
		t.Logf("%-10s k=%d m=%d stored=%d overhead=%.2fx healthy=%.1fms degraded=%.1fms (%.2fx) survives=%v",
			p.Scheme, p.K, p.M, p.StoredBytes, p.OverheadX, p.HealthyMS, p.DegradedMS, p.DegradedX, p.SurvivesAllM)
	}
	plain, rep3, rs := byName["plain"], byName["rep3 (1+2)"], byName["rs4+2"]
	if plain.StoredBytes == 0 || rep3.StoredBytes == 0 || rs.StoredBytes == 0 {
		t.Fatalf("schemes missing from report: %+v", rep.Schemes)
	}

	// Durability: every scheme survived its entire ≤M outage envelope.
	for _, p := range rep.Schemes {
		if !p.SurvivesAllM {
			t.Errorf("%s failed an outage pattern within its tolerance", p.Scheme)
		}
	}
	if rs.ToleratesDomains != rep3.ToleratesDomains {
		t.Fatalf("rs and rep3 tolerance differ (%d vs %d) — frontier comparison invalid",
			rs.ToleratesDomains, rep3.ToleratesDomains)
	}

	// Cost: the RS stripe must be strictly cheaper than naive
	// (1+M)-replication at the same fault tolerance, and close to its
	// ideal (K+M)/K overhead (envelopes and padding allow 10% slack).
	if rs.StoredBytes >= rep3.StoredBytes {
		t.Errorf("RS(4+2) stores %d bytes, not less than rep3's %d", rs.StoredBytes, rep3.StoredBytes)
	}
	ideal := float64(rs.K+rs.M) / float64(rs.K)
	if rs.OverheadX > ideal*1.10 {
		t.Errorf("RS overhead %.3fx exceeds ideal %.3fx by more than 10%%", rs.OverheadX, ideal)
	}
	if rep3.OverheadX < 2.9 {
		t.Errorf("rep3 overhead %.3fx — replication baseline implausibly cheap", rep3.OverheadX)
	}

	// Latency: losing M backends may cost reconstruction work, but the
	// degraded restore must stay within 3x of the healthy one.
	if rs.DegradedX > 3.0 {
		t.Errorf("degraded restore %.2fx healthy latency, want <= 3.0x", rs.DegradedX)
	}
	if rs.DegradedMS <= 0 || rs.HealthyMS <= 0 {
		t.Errorf("degenerate latency measurements: %+v", rs)
	}
}
