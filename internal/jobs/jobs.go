// Package jobs is the concurrent multi-job engine: it runs N
// backup/restore/verify/maintenance jobs across M goroutine-hosted
// L-nodes against one shared repository. The paper's deployment (§III-B,
// §VII-E) scales stateless L-nodes horizontally against a single storage
// layer; here each L-node is hosted by one worker goroutine pulling from a
// bounded queue, and the shared substrate (global index, container store,
// recipe store, locks) carries the concurrency — see core/locks.go and
// DESIGN.md §7 for the synchronisation protocol.
//
// Jobs are submitted with a context; a job whose context is cancelled
// before a worker picks it up completes with the context's error without
// running. Mid-job cancellation is not interrupted (the substrate's
// operations are not cancellable), matching the paper's job model where a
// started backup runs to completion.
package jobs

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"slimstore/internal/cache"
	"slimstore/internal/container"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
)

// Kind selects what a Job does.
type Kind int

const (
	// Backup deduplicates and stores Job.Data as a new version of FileID.
	Backup Kind = iota
	// Restore streams FileID@Version to Job.Out (Version < 0 = latest).
	Restore
	// Verify re-fingerprints every chunk of FileID@Version without
	// materialising it (Version < 0 = latest).
	Verify
	// Delete removes FileID@Version and sweeps its garbage containers.
	Delete
	// Optimize runs the G-node pass for a finished backup: reverse dedup
	// over NewContainers, then SCC for Sparse.
	Optimize
	// Scrub verifies and repairs the whole container namespace.
	Scrub
	// Sweep runs the full mark-and-sweep audit.
	Sweep
)

// String names the kind for logs and test output.
func (k Kind) String() string {
	switch k {
	case Backup:
		return "backup"
	case Restore:
		return "restore"
	case Verify:
		return "verify"
	case Delete:
		return "delete"
	case Optimize:
		return "optimize"
	case Scrub:
		return "scrub"
	case Sweep:
		return "sweep"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Job is one unit of work. Fields beyond Kind are per-kind inputs; unused
// fields are ignored.
type Job struct {
	Kind    Kind
	FileID  string
	Version int       // Restore/Verify/Delete/Optimize; < 0 = latest where allowed
	Data    []byte    // Backup input
	Out     io.Writer // Restore output; nil discards

	// Optimize inputs, from the finished backup's stats.
	NewContainers []container.ID
	Sparse        []container.ID
}

// Result is a completed job. Exactly the stats field matching Job.Kind is
// set (nil on error); Err carries the failure or the submission context's
// cancellation error.
type Result struct {
	Job   Job
	LNode string // name of the hosting L-node ("" for cancelled jobs)
	Err   error

	Backup  *lnode.BackupStats
	Restore *lnode.RestoreStats
	GC      *gnode.GCStats
	Reverse *gnode.ReverseDedupStats
	SCC     *gnode.SCCStats
	Scrub   *gnode.ScrubStats
	Audit   *gnode.AuditStats
}

// Ticket tracks one submitted job.
type Ticket struct {
	done chan struct{}
	res  Result
}

// Done is closed when the job has completed (or been skipped as
// cancelled).
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the job completes and returns its result.
func (t *Ticket) Wait() Result {
	<-t.done
	return t.res
}

type task struct {
	ctx context.Context
	job Job
	tk  *Ticket
}

// Options tune an Engine.
type Options struct {
	// LNodes is the worker count; each worker hosts one L-node.
	// Default 4.
	LNodes int
	// Queue bounds the submission queue (Submit blocks when full).
	// Default 2×LNodes.
	Queue int
}

// Stats is a snapshot of engine activity.
type Stats struct {
	Submitted int64
	Completed int64
	Failed    int64
	Cancelled int64

	// Restore data-path aggregates (restore fast path, DESIGN.md §14):
	// verify-job volume and LAW prefetcher effectiveness summed over every
	// completed restore and verify job.
	VerifyJobs         int64 // verify jobs whose chunks all checked out
	VerifiedBytes      int64 // logical bytes those jobs fingerprint-verified
	PrefetchDispatched int64 // container slots handed to prefetch workers
	PrefetchConsumed   int64 // fetches served from a dispatched slot
	PrefetchDirect     int64 // fetches that bypassed the prefetch slots
}

// Engine schedules jobs over a pool of goroutine-hosted L-nodes and one
// G-node. Safe for concurrent use.
type Engine struct {
	repo  *core.Repo
	g     *gnode.GNode
	queue chan task

	mu     sync.RWMutex // guards closed vs in-flight Submit sends
	closed bool
	wg     sync.WaitGroup
	once   sync.Once

	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	cancelled atomic.Int64

	verifyJobs    atomic.Int64
	verifiedBytes atomic.Int64
	pfDispatched  atomic.Int64
	pfConsumed    atomic.Int64
	pfDirect      atomic.Int64
}

// New starts an engine over repo. The G-node serialises its own
// maintenance internally, so sharing g across engines is safe.
func New(repo *core.Repo, g *gnode.GNode, opts Options) *Engine {
	if opts.LNodes < 1 {
		opts.LNodes = 4
	}
	if opts.Queue < 1 {
		opts.Queue = 2 * opts.LNodes
	}
	e := &Engine{repo: repo, g: g, queue: make(chan task, opts.Queue)}
	for i := 0; i < opts.LNodes; i++ {
		ln := lnode.New(repo, fmt.Sprintf("L%d", i))
		e.wg.Add(1)
		go e.host(ln)
	}
	return e
}

// Submit enqueues a job, blocking while the queue is full. It returns
// ctx.Err() if the context is cancelled first. ctx may be nil.
func (e *Engine) Submit(ctx context.Context, j Job) (*Ticket, error) {
	if ctx == nil {
		//slimlint:ignore ctxflow documented API contract: Submit accepts a nil ctx and degrades to an uncancellable job, matching the paper's run-to-completion model
		ctx = context.Background()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, fmt.Errorf("jobs: engine closed")
	}
	tk := &Ticket{done: make(chan struct{})}
	select {
	case e.queue <- task{ctx: ctx, job: j, tk: tk}:
		e.submitted.Add(1)
		return tk, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Run submits every job and waits for all of them, preserving order.
// Submission failures (context cancelled, engine closed) appear as
// results with Err set.
func (e *Engine) Run(ctx context.Context, js []Job) []Result {
	tickets := make([]*Ticket, len(js))
	results := make([]Result, len(js))
	for i, j := range js {
		tk, err := e.Submit(ctx, j)
		if err != nil {
			results[i] = Result{Job: j, Err: err}
			continue
		}
		tickets[i] = tk
	}
	for i, tk := range tickets {
		if tk != nil {
			results[i] = tk.Wait()
		}
	}
	return results
}

// Close stops accepting jobs, waits for the queue to drain and every
// worker to finish, then returns. Idempotent.
func (e *Engine) Close() {
	e.once.Do(func() {
		e.mu.Lock()
		e.closed = true
		close(e.queue)
		e.mu.Unlock()
		e.wg.Wait()
	})
}

// Stats returns a snapshot of engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Submitted:          e.submitted.Load(),
		Completed:          e.completed.Load(),
		Failed:             e.failed.Load(),
		Cancelled:          e.cancelled.Load(),
		VerifyJobs:         e.verifyJobs.Load(),
		VerifiedBytes:      e.verifiedBytes.Load(),
		PrefetchDispatched: e.pfDispatched.Load(),
		PrefetchConsumed:   e.pfConsumed.Load(),
		PrefetchDirect:     e.pfDirect.Load(),
	}
}

// SharedCacheStats snapshots the node-wide restore cache the engine's
// restore jobs share (zero value when Config.SharedCacheBytes disabled it).
func (e *Engine) SharedCacheStats() cache.SharedStats {
	if e.repo.RestoreIO == nil {
		return cache.SharedStats{}
	}
	return e.repo.RestoreIO.Stats()
}

// host is one worker goroutine: it owns one L-node for its lifetime and
// executes queued jobs on it.
func (e *Engine) host(ln *lnode.LNode) {
	defer e.wg.Done()
	// Tear down the node's persistent hash workers when the host retires.
	defer ln.Close()
	for t := range e.queue {
		if err := t.ctx.Err(); err != nil {
			e.cancelled.Add(1)
			t.tk.res = Result{Job: t.job, Err: err}
			close(t.tk.done)
			continue
		}
		res := e.run(ln, t.job)
		if res.Err != nil {
			e.failed.Add(1)
		} else {
			e.completed.Add(1)
		}
		t.tk.res = res
		close(t.tk.done)
	}
}

// noteRestore folds one restore/verify job's prefetcher effectiveness
// into the engine aggregates.
func (e *Engine) noteRestore(st *lnode.RestoreStats, err error) {
	if err != nil || st == nil {
		return
	}
	e.pfDispatched.Add(int64(st.Prefetch.Dispatched))
	e.pfConsumed.Add(int64(st.Prefetch.Consumed))
	e.pfDirect.Add(int64(st.Prefetch.Direct))
}

// latest resolves Version < 0 to the file's newest version.
func (e *Engine) latest(j Job) (int, error) {
	if j.Version >= 0 {
		return j.Version, nil
	}
	v, ok, err := e.repo.Recipes.LatestVersion(j.FileID)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("jobs: %s: no versions of %q", j.Kind, j.FileID)
	}
	return v, nil
}

func (e *Engine) run(ln *lnode.LNode, j Job) Result {
	res := Result{Job: j, LNode: ln.Name()}
	switch j.Kind {
	case Backup:
		res.Backup, res.Err = ln.Backup(j.FileID, j.Data)
	case Restore:
		v, err := e.latest(j)
		if err != nil {
			res.Err = err
			return res
		}
		out := j.Out
		if out == nil {
			out = io.Discard
		}
		res.Restore, res.Err = ln.Restore(j.FileID, v, out)
		e.noteRestore(res.Restore, res.Err)
	case Verify:
		v, err := e.latest(j)
		if err != nil {
			res.Err = err
			return res
		}
		res.Restore, res.Err = ln.Verify(j.FileID, v)
		e.noteRestore(res.Restore, res.Err)
		if res.Err == nil && res.Restore != nil {
			e.verifyJobs.Add(1)
			e.verifiedBytes.Add(res.Restore.Bytes)
		}
	case Delete:
		res.GC, res.Err = e.g.DeleteVersion(j.FileID, j.Version)
	case Optimize:
		res.Reverse, res.Err = e.g.ReverseDedup(j.NewContainers)
		if res.Err == nil {
			res.SCC, res.Err = e.g.CompactSparse(j.FileID, j.Version, j.Sparse)
		}
	case Scrub:
		res.Scrub, res.Err = e.g.Scrub()
	case Sweep:
		res.Audit, res.Err = e.g.FullSweep()
	default:
		res.Err = fmt.Errorf("jobs: unknown kind %d", int(j.Kind))
	}
	return res
}
