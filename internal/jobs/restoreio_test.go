package jobs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"

	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/oss"
)

// countingStore counts container data-object reads issued to the base
// store — the true OSS traffic underneath every per-job metered view and
// the node-wide shared cache.
type countingStore struct {
	oss.Store
	mu        sync.Mutex
	dataGets  int
	dataBytes int64
}

func (s *countingStore) countData(key string, n int) {
	if !strings.HasSuffix(key, ".data") {
		return
	}
	s.mu.Lock()
	s.dataGets++
	s.dataBytes += int64(n)
	s.mu.Unlock()
}

func (s *countingStore) Get(key string) ([]byte, error) {
	b, err := s.Store.Get(key)
	if err == nil {
		s.countData(key, len(b))
	}
	return b, err
}

func (s *countingStore) GetRange(key string, off, n int64) ([]byte, error) {
	b, err := s.Store.GetRange(key, off, n)
	if err == nil {
		s.countData(key, len(b))
	}
	return b, err
}

func (s *countingStore) snapshot() (int, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dataGets, s.dataBytes
}

// TestConcurrentOverlappingRestoresShareFetches drives the node-level
// restore I/O layer the way the paper's deployment does: many jobs
// restoring the same version at once. Against a cold cache, the
// singleflight plus shared cache must collapse the container traffic to
// one OSS GET per unique container — not one per job — while every job's
// output stays byte-identical to the backed-up data.
func TestConcurrentOverlappingRestoresShareFetches(t *testing.T) {
	const jobs = 6

	cs := &countingStore{Store: oss.NewMem()}
	repo, err := core.OpenRepo(cs, stressConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(repo, gnode.New(repo), Options{LNodes: jobs})
	defer eng.Close()

	data := stressData(42, 2<<20)
	res := eng.Run(nil, []Job{{Kind: Backup, FileID: "db/overlap", Data: data}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	uniques := len(res[0].Backup.NewContainers)
	if uniques < 4 {
		t.Fatalf("scenario too small: %d containers", uniques)
	}

	preGets, _ := cs.snapshot()
	bufs := make([]bytes.Buffer, jobs)
	batch := make([]Job, jobs)
	for i := range batch {
		batch[i] = Job{Kind: Restore, FileID: "db/overlap", Version: 0, Out: &bufs[i]}
	}
	for i, r := range eng.Run(nil, batch) {
		if r.Err != nil {
			t.Fatalf("restore %d: %v", i, r.Err)
		}
		if !bytes.Equal(bufs[i].Bytes(), data) {
			t.Fatalf("restore %d: bytes differ from backup input", i)
		}
		if st := r.Restore.Cache; st.ContainersRead+st.SharedHits+st.SharedJoins < uniques {
			t.Fatalf("restore %d read %d containers + %d hits + %d joins, want >= %d",
				i, st.ContainersRead, st.SharedHits, st.SharedJoins, uniques)
		}
	}
	postGets, _ := cs.snapshot()

	// The collapse property: jobs × uniques fetch demands, at most uniques
	// actual OSS reads (each unique container fetched by exactly one job).
	if got := postGets - preGets; got > uniques {
		t.Fatalf("%d concurrent restores issued %d OSS data reads over %d unique containers — singleflight/shared cache not collapsing",
			jobs, got, uniques)
	}
	st := eng.SharedCacheStats()
	if st.Misses == 0 {
		t.Fatalf("shared cache saw no owner fetches: %+v", st)
	}
	// Everything the owners fetched was reused by the other jobs.
	if want := int64((jobs-1)*uniques) - st.InflightJoins - st.Hits; want > 0 {
		t.Fatalf("shared reuse too low: hits=%d joins=%d misses=%d over %d jobs × %d containers",
			st.Hits, st.InflightJoins, st.Misses, jobs, uniques)
	}
}

// TestRestoreAfterInvalidationRefetches asserts the safety half of the
// cache: when maintenance drops containers, the resident entries must be
// invalidated, and later restores must keep serving correct bytes.
//
// The scenario is built so the drop is guaranteed: v1 shares nothing with
// v0, so every v0 container becomes a garbage candidate at v1's backup,
// and deleting v0 sweeps them — while the warming restore has left exactly
// those containers resident in the shared cache.
func TestRestoreAfterInvalidationRefetches(t *testing.T) {
	cs := &countingStore{Store: oss.NewMem()}
	repo, err := core.OpenRepo(cs, stressConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(repo, gnode.New(repo), Options{LNodes: 2})
	defer eng.Close()

	v0, v1 := stressData(7, 1<<20), stressData(8, 1<<20)
	for v, d := range [][]byte{v0, v1} {
		if res := eng.Run(nil, []Job{{Kind: Backup, FileID: "db/inval", Data: d}}); res[0].Err != nil {
			t.Fatalf("backup v%d: %v", v, res[0].Err)
		}
		var buf bytes.Buffer
		if res := eng.Run(nil, []Job{{Kind: Restore, FileID: "db/inval", Version: v, Out: &buf}}); res[0].Err != nil {
			t.Fatalf("warming restore v%d: %v", v, res[0].Err)
		}
		if !bytes.Equal(buf.Bytes(), d) {
			t.Fatalf("warming restore v%d: bytes differ", v)
		}
	}
	warm := eng.SharedCacheStats()
	if warm.Entries == 0 {
		t.Fatalf("warming restores left nothing resident: %+v", warm)
	}

	res := eng.Run(nil, []Job{{Kind: Delete, FileID: "db/inval", Version: 0}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].GC.ContainersCollected == 0 {
		t.Fatal("delete collected no containers — scenario does not exercise invalidation")
	}
	st := eng.SharedCacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("GC dropped %d containers but the shared cache saw no invalidations: %+v",
			res[0].GC.ContainersCollected, st)
	}
	if st.Entries >= warm.Entries {
		t.Fatalf("invalidation did not shrink the cache: %d -> %d entries", warm.Entries, st.Entries)
	}

	// The surviving version still restores byte-identically through the
	// post-invalidation cache.
	var buf bytes.Buffer
	res = eng.Run(nil, []Job{{Kind: Restore, FileID: "db/inval", Version: 1, Out: &buf}})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if !bytes.Equal(buf.Bytes(), v1) {
		t.Fatal("post-delete restore v1: bytes differ")
	}
	// And the deleted version fails loudly rather than being served stale
	// out of the cache.
	if res = eng.Run(nil, []Job{{Kind: Restore, FileID: "db/inval", Version: 0, Out: io.Discard}}); res[0].Err == nil {
		t.Fatal("restore of deleted v0 succeeded — served from stale cache?")
	}
}
