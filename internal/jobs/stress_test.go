package jobs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/oss"
)

func stressConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 256 << 10
	cfg.SegmentChunks = 64
	cfg.SampleRatio = 8
	cfg.MaxSuperChunkBytes = 64 << 10
	cfg.CacheMemBytes = 16 << 20
	cfg.CacheDiskBytes = 64 << 20
	cfg.LAWChunks = 256
	cfg.PrefetchThreads = 2
	return cfg
}

func stressData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

// stressMutate overwrites a handful of small ranges, keeping most bytes
// identical so incremental backups have a high duplicate ratio to assert
// against.
func stressMutate(data []byte, seed int64) []byte {
	r := rand.New(rand.NewSource(seed))
	out := append([]byte(nil), data...)
	for i := 0; i < 8; i++ {
		off := r.Intn(len(out) - 256)
		r.Read(out[off : off+32+r.Intn(128)])
	}
	return out
}

// TestStressMixedJobsUnderFaults is the race regression suite's anchor: a
// seeded run of well over 32 mixed jobs (backup, restore, verify,
// optimize, delete, scrub, sweep) over 6 L-nodes against one shared repo,
// with probabilistic OSS faults injected underneath a retry layer the
// whole time. It must pass under -race (scripts/check.sh runs the suite
// that way), every restore must be byte-identical, incremental dedup
// ratios must hold up, and a final audit must find no lost or leaked
// chunks.
func TestStressMixedJobsUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("slow stress test")
	}
	const (
		lnodes   = 6
		files    = 8
		versions = 3
		fileSize = 512 << 10
	)

	mem := oss.NewMem()
	faulty := oss.NewFaulty(mem)
	faulty.SetRand(rand.New(rand.NewSource(1)))
	// Transient faults under an aggressive retry layer: every operation
	// eventually succeeds, so outcomes stay assertable while every
	// error-handling path in between gets exercised.
	store := oss.NewRetry(faulty, 10, time.Microsecond, func(time.Duration) {})

	repo, err := core.OpenRepo(store, stressConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := New(repo, gnode.New(repo), Options{LNodes: lnodes})
	defer eng.Close()

	fileID := func(i int) string { return fmt.Sprintf("db/stress%d", i) }
	kept := make([][][]byte, files) // kept[file][version] = expected bytes
	data := make([][]byte, files)
	for i := range data {
		data[i] = stressData(int64(i+1)*7919, fileSize)
	}

	faulty.FailRate(0.02)

	totalJobs := 0
	var pendingOpt []Job // G-node passes from the previous wave's backups
	for wave := 0; wave < versions; wave++ {
		var batch []Job
		var checks []func(Result) error
		add := func(j Job, check func(Result) error) {
			batch = append(batch, j)
			checks = append(checks, check)
		}

		for i := 0; i < files; i++ {
			i := i
			if wave > 0 {
				data[i] = stressMutate(data[i], int64(wave*1000+i))
			}
			d := append([]byte(nil), data[i]...)
			kept[i] = append(kept[i], d)
			wantVer, incremental := wave, wave > 0
			add(Job{Kind: Backup, FileID: fileID(i), Data: d}, func(r Result) error {
				if r.Err != nil {
					return fmt.Errorf("backup %s wave %d: %w", fileID(i), wantVer, r.Err)
				}
				if r.Backup.Version != wantVer {
					return fmt.Errorf("backup %s: version %d, want %d", fileID(i), r.Backup.Version, wantVer)
				}
				if ratio := r.Backup.DedupRatio(); incremental && ratio < 0.5 {
					return fmt.Errorf("backup %s v%d: dedup ratio collapsed to %.2f (%d of %d bytes duplicate)",
						fileID(i), wantVer, ratio, r.Backup.DuplicateBytes, r.Backup.LogicalBytes)
				}
				return nil
			})

			// Read back an already-stored version of another file while
			// its neighbours are being written.
			if wave > 0 {
				rf := (i + wave) % files
				rv := rand.New(rand.NewSource(int64(wave*100 + i))).Intn(wave)
				var buf bytes.Buffer
				add(Job{Kind: Restore, FileID: fileID(rf), Version: rv, Out: &buf}, func(r Result) error {
					if r.Err != nil {
						return fmt.Errorf("restore %s v%d: %w", fileID(rf), rv, r.Err)
					}
					if !bytes.Equal(buf.Bytes(), kept[rf][rv]) {
						return fmt.Errorf("restore %s v%d: bytes differ mid-stress", fileID(rf), rv)
					}
					return nil
				})
			}
		}
		for _, j := range pendingOpt {
			j := j
			add(j, func(r Result) error {
				if r.Err != nil {
					return fmt.Errorf("optimize %s v%d: %w", j.FileID, j.Version, r.Err)
				}
				return nil
			})
		}
		pendingOpt = nil
		// Maintenance racing the online path: a scrub and a full audit in
		// the same wave as the backups and restores.
		add(Job{Kind: Scrub}, func(r Result) error {
			if r.Err != nil {
				return fmt.Errorf("scrub wave %d: %w", wave, r.Err)
			}
			return nil
		})
		add(Job{Kind: Sweep}, func(r Result) error {
			if r.Err != nil {
				return fmt.Errorf("sweep wave %d: %w", wave, r.Err)
			}
			return nil
		})

		totalJobs += len(batch)
		for i, r := range eng.Run(nil, batch) {
			if err := checks[i](r); err != nil {
				t.Fatal(err)
			}
			if r.Job.Kind == Backup {
				st := r.Backup
				pendingOpt = append(pendingOpt, Job{
					Kind: Optimize, FileID: st.FileID, Version: st.Version,
					NewContainers: st.NewContainers, Sparse: st.SparseContainers,
				})
			}
		}
	}

	// Quiesce and audit with faults disarmed: every version of every file
	// restores byte-identically and verifies, concurrently.
	faulty.Clear()
	var batch []Job
	var checks []func(Result) error
	for i := 0; i < files; i++ {
		for v := 0; v < versions; v++ {
			i, v := i, v
			var buf bytes.Buffer
			batch = append(batch, Job{Kind: Restore, FileID: fileID(i), Version: v, Out: &buf})
			checks = append(checks, func(r Result) error {
				if r.Err != nil {
					return fmt.Errorf("final restore %s v%d: %w", fileID(i), v, r.Err)
				}
				if !bytes.Equal(buf.Bytes(), kept[i][v]) {
					return fmt.Errorf("final restore %s v%d: bytes differ", fileID(i), v)
				}
				return nil
			})
			batch = append(batch, Job{Kind: Verify, FileID: fileID(i), Version: v})
			checks = append(checks, func(r Result) error {
				if r.Err != nil {
					return fmt.Errorf("final verify %s v%d: %w", fileID(i), v, r.Err)
				}
				return nil
			})
		}
	}
	totalJobs += len(batch)
	for i, r := range eng.Run(nil, batch) {
		if err := checks[i](r); err != nil {
			t.Fatal(err)
		}
	}

	// No lost chunks, no leaked containers: the audit finds everything
	// reachable and nothing to reclaim.
	res := eng.Run(nil, []Job{{Kind: Sweep}})
	totalJobs++
	if res[0].Err != nil {
		t.Fatalf("final sweep: %v", res[0].Err)
	}
	if res[0].Audit.ContainersSwept != 0 {
		t.Fatalf("final sweep reclaimed %d containers: chunks were lost or leaked", res[0].Audit.ContainersSwept)
	}

	if totalJobs < 32 {
		t.Fatalf("stress schedule ran only %d jobs, want >= 32", totalJobs)
	}
	st := eng.Stats()
	if st.Failed != 0 || st.Cancelled != 0 || st.Completed != st.Submitted || st.Submitted != int64(totalJobs) {
		t.Fatalf("engine counters inconsistent after %d jobs: %+v", totalJobs, st)
	}
	if ops := faulty.Ops(); ops == 0 {
		t.Fatal("fault layer observed no operations: the stress run bypassed the faulty store")
	}
}
