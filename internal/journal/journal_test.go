package journal

import (
	"reflect"
	"testing"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

func TestRecordRoundTrip(t *testing.T) {
	mem := oss.NewMem()
	js, err := Open(mem)
	if err != nil {
		t.Fatal(err)
	}
	fp := fingerprint.OfBytes([]byte("chunk"))
	rec := &Record{
		Kind:    KindSCC,
		FileID:  "f",
		Version: 3,
		Sparse:  []uint64{1, 2},
		New:     []uint64{9},
	}
	rec.SetMoved(map[fingerprint.FP]container.ID{fp: 9})
	key, err := js.Commit(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := js.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
	moved, err := got.MovedFPs()
	if err != nil {
		t.Fatal(err)
	}
	if moved[fp] != 9 {
		t.Fatalf("moved = %v", moved)
	}
	if err := js.Remove(key); err != nil {
		t.Fatal(err)
	}
	keys, err := js.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("records survive removal: %v", keys)
	}
	// Removing again (replay racing a peer) is not an error.
	if err := js.Remove(key); err != nil {
		t.Fatal(err)
	}
}

func TestSequencesResumeAndOrder(t *testing.T) {
	mem := oss.NewMem()
	js, _ := Open(mem)
	k1, _ := js.Commit(&Record{Kind: KindGC, FileID: "a"})
	k2, _ := js.Commit(&Record{Kind: KindGC, FileID: "b"})

	// A reopened journal must not reuse live sequence numbers.
	js2, err := Open(mem)
	if err != nil {
		t.Fatal(err)
	}
	k3, _ := js2.Commit(&Record{Kind: KindGC, FileID: "c"})
	keys, err := js2.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{k1, k2, k3}) {
		t.Fatalf("list = %v, want commit order %v", keys, []string{k1, k2, k3})
	}
}
