// Package journal provides the intent journal that makes the G-node's
// multi-object storage reorganisations crash-consistent. OSS offers only
// single-object atomicity, but compaction and version collection mutate
// many objects (containers, recipes, catalog entries, index state); a
// crash mid-operation would otherwise strand the repo in a state no
// invariant describes.
//
// The protocol is write-ahead intent logging with a single commit point:
//
//  1. Prepare: write all NEW objects (fresh containers) — nothing
//     references them yet, so a crash here leaks only unreferenced data
//     that FullSweep reclaims.
//  2. Commit: put one journal record describing the remaining mutations.
//     This single put is the atomic commit point.
//  3. Apply: perform the mutations (index repoints, recipe/catalog swaps,
//     deletions). Every step is idempotent.
//  4. Remove the record.
//
// core.OpenRepo replays surviving records before any new work: a record's
// presence means the operation committed, so replay re-runs Apply to roll
// it forward. In-place container rewrites are the one case that can roll
// *back*: their record carries the expected payload checksum, and replay
// only applies the new metadata if the payload actually landed.
package journal

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
)

// Prefix is the OSS key namespace for journal records.
const Prefix = "journal/"

// Kind identifies which storage reorganisation a record describes.
type Kind string

const (
	// KindSCC commits a sparse-container-compaction: chunks already copied
	// into new containers; the record drives index repoint, recipe/catalog
	// update, and dead-marking of the drained sources.
	KindSCC Kind = "scc"
	// KindGC commits a version deletion: the record preserves the garbage
	// list so the sweep can resume after the catalog entry is gone.
	KindGC Kind = "gc"
	// KindRewrite commits an in-place container rewrite (same ID, deleted
	// chunks dropped): the record carries the new metadata and the new
	// payload's checksum, letting replay decide roll-forward vs roll-back.
	KindRewrite Kind = "rewrite"
)

// Record is one journaled intent. Only the fields relevant to its Kind
// are populated; container IDs serialise as their uint64 values.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`

	// SCC and GC: the version being reorganised.
	FileID  string `json:"file_id,omitempty"`
	Version int    `json:"version,omitempty"`

	// SCC: fingerprint (hex) -> container the chunk moved to; the drained
	// sparse sources; the freshly written targets.
	Moved  map[string]uint64 `json:"moved,omitempty"`
	Sparse []uint64          `json:"sparse,omitempty"`
	New    []uint64          `json:"new,omitempty"`

	// GC: containers associated with the deleted version as garbage.
	Garbage []uint64 `json:"garbage,omitempty"`

	// Rewrite: target container, its new metadata (encoded), and the
	// checksum/length of the new data *object* (footer included).
	Target  uint64 `json:"target,omitempty"`
	Meta    []byte `json:"meta,omitempty"`
	DataCRC uint32 `json:"data_crc,omitempty"`
	DataLen int64  `json:"data_len,omitempty"`
}

// SetMoved records a fingerprint→container relocation map.
func (r *Record) SetMoved(m map[fingerprint.FP]container.ID) {
	r.Moved = make(map[string]uint64, len(m))
	for fp, id := range m {
		r.Moved[fp.String()] = uint64(id)
	}
}

// MovedFPs decodes the relocation map.
func (r *Record) MovedFPs() (map[fingerprint.FP]container.ID, error) {
	out := make(map[fingerprint.FP]container.ID, len(r.Moved))
	for s, id := range r.Moved {
		fp, err := fingerprint.Parse(s)
		if err != nil {
			return nil, fmt.Errorf("journal: record %d: bad fingerprint %q: %w", r.Seq, s, err)
		}
		out[fp] = container.ID(id)
	}
	return out, nil
}

// IDs converts a serialised container-ID list.
func IDs(raw []uint64) []container.ID {
	out := make([]container.ID, len(raw))
	for i, v := range raw {
		out[i] = container.ID(v)
	}
	return out
}

// RawIDs converts a container-ID list for serialisation.
func RawIDs(ids []container.ID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// Store persists journal records on OSS. It is safe for concurrent use;
// sequence numbers resume after the largest existing record.
type Store struct {
	oss  oss.Store
	next atomic.Uint64
}

// Open opens the journal namespace on an OSS store.
func Open(s oss.Store) (*Store, error) {
	js := &Store{oss: s}
	keys, err := s.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("journal: scan: %w", err)
	}
	var max uint64
	for _, k := range keys {
		if seq, ok := parseKey(k); ok && seq > max {
			max = seq
		}
	}
	js.next.Store(max)
	return js, nil
}

func key(seq uint64) string { return fmt.Sprintf("%s%016d.json", Prefix, seq) }

func parseKey(k string) (uint64, bool) {
	name := strings.TrimSuffix(strings.TrimPrefix(k, Prefix), ".json")
	seq, err := strconv.ParseUint(name, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Commit assigns the record a sequence number and durably writes it. The
// put is the operation's atomic commit point; Commit returns the key to
// Remove once the operation's apply phase completes.
func (s *Store) Commit(r *Record) (string, error) {
	r.Seq = s.next.Add(1)
	b, err := json.Marshal(r)
	if err != nil {
		return "", fmt.Errorf("journal: encode record %d: %w", r.Seq, err)
	}
	k := key(r.Seq)
	if err := s.oss.Put(k, b); err != nil {
		return "", fmt.Errorf("journal: commit record %d: %w", r.Seq, err)
	}
	return k, nil
}

// Remove deletes a record after its apply phase completes. Removing an
// already-removed record is not an error (replay races a crashed peer).
func (s *Store) Remove(key string) error {
	if err := s.oss.Delete(key); err != nil {
		return fmt.Errorf("journal: remove %s: %w", key, err)
	}
	return nil
}

// Get fetches and decodes one record.
func (s *Store) Get(key string) (*Record, error) {
	b, err := s.oss.Get(key)
	if err != nil {
		return nil, fmt.Errorf("journal: get %s: %w", key, err)
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("journal: decode %s: %w", key, err)
	}
	return &r, nil
}

// List returns the keys of every surviving record in commit order.
func (s *Store) List() ([]string, error) {
	keys, err := s.oss.List(Prefix)
	if err != nil {
		return nil, fmt.Errorf("journal: list: %w", err)
	}
	var out []string
	seqs := make(map[string]uint64, len(keys))
	for _, k := range keys {
		if seq, ok := parseKey(k); ok {
			out = append(out, k)
			seqs[k] = seq
		}
	}
	sort.Slice(out, func(a, b int) bool { return seqs[out[a]] < seqs[out[b]] })
	return out, nil
}
