// Package fingerprint defines chunk fingerprints and the representative
// sampling used throughout SLIMSTORE.
//
// A fingerprint is a cryptographically secure hash of a chunk's content; two
// chunks with equal fingerprints are treated as duplicates (paper §II). The
// paper uses SHA-1; SHA-256 is offered as a stronger alternative. Sampling
// follows the mod-R scheme used by Sparse Indexing and DeFrame (paper §IV-A):
// a fingerprint is representative iff its low bits mod R equal zero.
package fingerprint

import (
	"crypto/sha1"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the number of bytes kept from the underlying hash. 20 bytes (the
// full SHA-1 width) keeps collision probability negligible for any dataset
// this system will see while remaining compact in indexes and recipes.
const Size = 20

// FP is a chunk fingerprint.
type FP [Size]byte

// Algorithm selects the hash used to fingerprint chunks.
type Algorithm int

// Supported fingerprint algorithms.
const (
	SHA1 Algorithm = iota
	SHA256
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case SHA1:
		return "sha1"
	case SHA256:
		return "sha256"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Of computes the fingerprint of data with the given algorithm. For SHA256
// the digest is truncated to Size bytes.
func Of(alg Algorithm, data []byte) FP {
	var fp FP
	switch alg {
	case SHA256:
		sum := sha256.Sum256(data)
		copy(fp[:], sum[:Size])
	default:
		sum := sha1.Sum(data)
		copy(fp[:], sum[:])
	}
	return fp
}

// OfBytes computes the default (SHA-1) fingerprint of data.
func OfBytes(data []byte) FP { return Of(SHA1, data) }

// String returns the hex form of the fingerprint.
func (f FP) String() string { return hex.EncodeToString(f[:]) }

// Short returns the first 8 hex characters, for logs.
func (f FP) Short() string { return hex.EncodeToString(f[:4]) }

// Uint64 folds the leading 8 bytes into an integer; used for sampling and
// for bloom-filter derivation.
func (f FP) Uint64() uint64 { return binary.BigEndian.Uint64(f[:8]) }

// IsZero reports whether f is the zero fingerprint.
func (f FP) IsZero() bool { return f == FP{} }

// Parse decodes a hex fingerprint produced by String.
func Parse(s string) (FP, error) {
	var fp FP
	b, err := hex.DecodeString(s)
	if err != nil {
		return fp, fmt.Errorf("fingerprint: parse %q: %w", s, err)
	}
	if len(b) != Size {
		return fp, fmt.Errorf("fingerprint: parse %q: want %d bytes, got %d", s, Size, len(b))
	}
	copy(fp[:], b)
	return fp, nil
}

// Sampler selects representative fingerprints with the mod-R rule.
// R must be a power of two; R == 1 samples everything.
type Sampler struct {
	mask uint64
}

// NewSampler returns a sampler with ratio 1/r. r is rounded down to a power
// of two; r < 1 is treated as 1.
func NewSampler(r int) Sampler {
	if r < 1 {
		r = 1
	}
	// Round down to a power of two so the mod reduces to a mask.
	p := 1
	for p*2 <= r {
		p *= 2
	}
	return Sampler{mask: uint64(p - 1)}
}

// R returns the effective sampling divisor.
func (s Sampler) R() int { return int(s.mask) + 1 }

// Sample reports whether fp is representative (fp mod R == 0).
func (s Sampler) Sample(fp FP) bool { return fp.Uint64()&s.mask == 0 }

// Set is an in-memory fingerprint set.
type Set map[FP]struct{}

// NewSet returns an empty set with room for n entries.
func NewSet(n int) Set { return make(Set, n) }

// Add inserts fp and reports whether it was absent.
func (s Set) Add(fp FP) bool {
	if _, ok := s[fp]; ok {
		return false
	}
	s[fp] = struct{}{}
	return true
}

// Has reports membership.
func (s Set) Has(fp FP) bool {
	_, ok := s[fp]
	return ok
}

// Len returns the set cardinality.
func (s Set) Len() int { return len(s) }

// Jaccard estimates the resemblance of two fingerprint sets, |a∩b| / |a∪b|.
// By Broder's theorem the resemblance of two files is well estimated by the
// resemblance of their representative samples (paper §III-B).
func Jaccard(a, b Set) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	small, large := a, b
	if len(small) > len(large) {
		small, large = large, small
	}
	inter := 0
	for fp := range small {
		if large.Has(fp) {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
