package fingerprint

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestOfDeterministicAndDistinct(t *testing.T) {
	a := OfBytes([]byte("hello"))
	b := OfBytes([]byte("hello"))
	c := OfBytes([]byte("hellp"))
	if a != b {
		t.Fatal("same content produced different fingerprints")
	}
	if a == c {
		t.Fatal("different content produced equal fingerprints")
	}
	if a.IsZero() {
		t.Fatal("real fingerprint reported zero")
	}
	var zero FP
	if !zero.IsZero() {
		t.Fatal("zero fingerprint not recognised")
	}
}

func TestAlgorithms(t *testing.T) {
	data := []byte("some chunk payload")
	s1 := Of(SHA1, data)
	s256 := Of(SHA256, data)
	if s1 == s256 {
		t.Fatal("SHA1 and SHA256 fingerprints collide on same input")
	}
	if SHA1.String() != "sha1" || SHA256.String() != "sha256" {
		t.Fatalf("algorithm names: %s, %s", SHA1, SHA256)
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm has empty name")
	}
}

func TestParseRoundTrip(t *testing.T) {
	fp := OfBytes([]byte("x"))
	got, err := Parse(fp.String())
	if err != nil || got != fp {
		t.Fatalf("Parse(String) = %v, %v", got, err)
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("bad hex accepted")
	}
	if _, err := Parse("abcd"); err == nil {
		t.Fatal("short hex accepted")
	}
	if len(fp.Short()) != 8 {
		t.Fatalf("Short() = %q", fp.Short())
	}
}

func TestSampler(t *testing.T) {
	// R rounds down to a power of two; R<1 clamps to 1.
	if r := NewSampler(0).R(); r != 1 {
		t.Fatalf("R(0) = %d", r)
	}
	if r := NewSampler(33).R(); r != 32 {
		t.Fatalf("R(33) = %d", r)
	}
	// R=1 samples everything.
	all := NewSampler(1)
	for i := 0; i < 100; i++ {
		if !all.Sample(OfBytes([]byte{byte(i)})) {
			t.Fatal("R=1 sampler rejected a fingerprint")
		}
	}
	// R=16 samples ~1/16 of random fingerprints.
	s := NewSampler(16)
	n := 0
	const total = 1 << 14
	for i := 0; i < total; i++ {
		if s.Sample(OfBytes([]byte{byte(i), byte(i >> 8), 7})) {
			n++
		}
	}
	want := total / 16
	if n < want/2 || n > want*2 {
		t.Fatalf("sampled %d of %d, want ≈%d", n, total, want)
	}
}

func TestSet(t *testing.T) {
	s := NewSet(4)
	fp := OfBytes([]byte("a"))
	if !s.Add(fp) {
		t.Fatal("first Add returned false")
	}
	if s.Add(fp) {
		t.Fatal("duplicate Add returned true")
	}
	if !s.Has(fp) || s.Len() != 1 {
		t.Fatalf("set state wrong: has=%v len=%d", s.Has(fp), s.Len())
	}
}

func TestJaccard(t *testing.T) {
	mk := func(ids ...int) Set {
		s := NewSet(len(ids))
		for _, id := range ids {
			s.Add(OfBytes([]byte{byte(id), byte(id >> 8)}))
		}
		return s
	}
	if j := Jaccard(mk(1, 2, 3), mk(1, 2, 3)); j != 1 {
		t.Fatalf("identical sets Jaccard = %f", j)
	}
	if j := Jaccard(mk(1, 2), mk(3, 4)); j != 0 {
		t.Fatalf("disjoint sets Jaccard = %f", j)
	}
	if j := Jaccard(mk(1, 2, 3, 4), mk(3, 4, 5, 6)); j != 1.0/3 {
		t.Fatalf("half-overlap Jaccard = %f", j)
	}
	if j := Jaccard(NewSet(0), NewSet(0)); j != 1 {
		t.Fatalf("empty sets Jaccard = %f", j)
	}
}

// Property: fingerprinting is injective-in-practice and stable.
func TestQuickFingerprint(t *testing.T) {
	seen := map[FP]string{}
	f := func(data []byte) bool {
		fp := OfBytes(data)
		if prev, ok := seen[fp]; ok {
			return prev == string(data)
		}
		seen[fp] = string(data)
		return fp == OfBytes(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkFingerprint measures chunk hashing at the two deployed sizes:
// the 4 KiB average chunk and a 64 KiB superchunk.
func BenchmarkFingerprint(b *testing.B) {
	for _, alg := range []Algorithm{SHA1, SHA256} {
		for _, size := range []int{4 << 10, 64 << 10} {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i * 31)
			}
			b.Run(fmt.Sprintf("%s/%dKiB", alg, size>>10), func(b *testing.B) {
				b.SetBytes(int64(size))
				for i := 0; i < b.N; i++ {
					Of(alg, data)
				}
			})
		}
	}
}
