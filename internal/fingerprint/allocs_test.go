package fingerprint

import (
	"math/rand"
	"testing"
)

// TestOfAllocs: Of runs once per chunk on the ingest hot path and must
// stay allocation-free for both algorithms.
func TestOfAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	buf := make([]byte, 8<<10)
	r.Read(buf)
	for _, alg := range []Algorithm{SHA1, SHA256} {
		allocs := testing.AllocsPerRun(100, func() {
			Of(alg, buf)
		})
		if allocs != 0 {
			t.Errorf("Of(%v) allocates %.1f/op, want 0", alg, allocs)
		}
	}
}
