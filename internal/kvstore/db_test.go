package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"slimstore/internal/oss"
)

func smallOpts() Options {
	return Options{
		MemtableBytes:   8 << 10,
		WALFlushBytes:   2 << 10,
		L0Threshold:     3,
		TargetFileBytes: 8 << 10,
		LevelRatio:      4,
		MaxLevels:       4,
	}
}

func TestPutGet(t *testing.T) {
	db, err := Open(oss.NewMem(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	// Overwrite.
	db.Put([]byte("k1"), []byte("v2"))
	v, _, _ = db.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Fatalf("after overwrite Get = %q", v)
	}
	// Delete.
	db.Delete([]byte("k1"))
	if _, ok, _ := db.Get([]byte("k1")); ok {
		t.Fatal("deleted key still visible")
	}
}

func TestFlushAndGetFromTables(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	want := map[string]string{}
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key%04d", i)
		v := fmt.Sprintf("value%d", i*i)
		want[k] = v
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Flushes == 0 || st.TablesLive == 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	for k, v := range want {
		got, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q, %v, %v; want %q", k, got, ok, err, v)
		}
	}
}

func TestOverwritesAcrossFlushes(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for round := 0; round < 5; round++ {
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("key%02d", i)
			v := fmt.Sprintf("round%d-%d", round, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key%02d", i)
		got, ok, _ := db.Get([]byte(k))
		if !ok || string(got) != fmt.Sprintf("round4-%d", i) {
			t.Fatalf("Get(%s) = %q, %v; want round4 value", k, got, ok)
		}
	}
}

func TestDeleteAcrossFlushCompact(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	db.Flush()
	for i := 0; i < 100; i += 2 {
		db.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, ok, _ := db.Get([]byte(fmt.Sprintf("k%03d", i)))
		if i%2 == 0 && ok {
			t.Fatalf("k%03d visible after delete+compact", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("k%03d lost by compaction", i)
		}
	}
}

func TestRecoveryFromWAL(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	for i := 0; i < 20; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	// Sync the WAL but do NOT flush the memtable; simulate a crash by
	// reopening from the same OSS without Close.
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		got, ok, err := db2.Get([]byte(fmt.Sprintf("k%d", i)))
		if err != nil || !ok || string(got) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered Get(k%d) = %q, %v, %v", i, got, ok, err)
		}
	}
	// New writes after recovery must get larger sequence numbers than any
	// replayed write (no clobbering).
	db2.Put([]byte("k0"), []byte("newest"))
	got, _, _ := db2.Get([]byte("k0"))
	if string(got) != "newest" {
		t.Fatalf("post-recovery overwrite lost: %q", got)
	}
}

func TestRecoveryAfterFlushAndMore(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	db.Put([]byte("a"), []byte("1"))
	db.Flush()
	db.Put([]byte("b"), []byte("2"))
	db.Sync()

	db2, err := Open(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range [][2]string{{"a", "1"}, {"b", "2"}} {
		got, ok, _ := db2.Get([]byte(kv[0]))
		if !ok || string(got) != kv[1] {
			t.Fatalf("Get(%s) = %q, %v", kv[0], got, ok)
		}
	}
}

func TestWALCorruptionDetected(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	db.Put([]byte("a"), []byte("1"))
	db.Sync()
	keys, _ := mem.List("kv/wal/")
	if len(keys) != 1 {
		t.Fatalf("wal segments = %v", keys)
	}
	seg, _ := mem.Get(keys[0])
	seg[len(seg)-1] ^= 0xFF
	mem.Put(keys[0], seg)
	if _, err := Open(mem, smallOpts()); err == nil {
		t.Fatal("corrupted WAL accepted")
	}
}

func TestScan(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Flush()
	for i := 100; i < 120; i++ { // some still in memtable
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("k050"))

	var keys []string
	err := db.Scan([]byte("k010"), []byte("k110"), func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 99 { // 100 keys in [10,110) minus deleted k050
		t.Fatalf("scan returned %d keys, want 99", len(keys))
	}
	if keys[0] != "k010" || keys[len(keys)-1] != "k109" {
		t.Fatalf("scan bounds wrong: %s .. %s", keys[0], keys[len(keys)-1])
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("scan keys not strictly ascending")
		}
	}
	for _, k := range keys {
		if k == "k050" {
			t.Fatal("deleted key in scan")
		}
	}

	// Early stop.
	n := 0
	db.Scan(nil, nil, func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCompactionReducesTables(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	r := rand.New(rand.NewSource(1))
	val := make([]byte, 64)
	for i := 0; i < 3000; i++ {
		r.Read(val)
		if err := db.Put([]byte(fmt.Sprintf("key%05d", r.Intn(1000))), val); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compactions ran: %+v", st)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	// After full compaction every key readable; only ~1000 live keys.
	live := 0
	db.Scan(nil, nil, func(k, v []byte) bool { live++; return true })
	if live > 1000 {
		t.Fatalf("scan found %d keys, want <= 1000", live)
	}
}

func TestClosedOps(t *testing.T) {
	db, _ := Open(oss.NewMem(), Options{})
	db.Put([]byte("k"), []byte("v"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("x"), []byte("y")); err != ErrClosed {
		t.Fatalf("Put after close = %v", err)
	}
	if _, _, err := db.Get([]byte("k")); err != ErrClosed {
		t.Fatalf("Get after close = %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestBloomShortCircuits(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("present%04d", i)), []byte("v"))
	}
	db.Flush()
	for i := 0; i < 500; i++ {
		db.Get([]byte(fmt.Sprintf("absent%04d", i)))
	}
	st := db.Stats()
	if st.BloomNegative < 400 {
		t.Fatalf("bloom filtered only %d of 500 absent lookups", st.BloomNegative)
	}
}

func TestSkiplistOrdering(t *testing.T) {
	s := newSkiplist(1)
	for i := 0; i < 100; i++ {
		s.insert(entry{key: []byte(fmt.Sprintf("k%02d", (i*37)%100)), seq: uint64(i + 1)})
	}
	var prev *entry
	for it := s.iter(); it.valid(); it.next() {
		if prev != nil && !internalLess(prev, it.cur()) {
			t.Fatal("skiplist out of order")
		}
		e := *it.cur()
		prev = &e
	}
	if s.count != 100 {
		t.Fatalf("count = %d", s.count)
	}
	// Newest version wins on get.
	s.insert(entry{key: []byte("k01"), seq: 1000, value: []byte("new")})
	e, ok := s.get([]byte("k01"))
	if !ok || string(e.value) != "new" {
		t.Fatalf("get = %+v, %v", e, ok)
	}
}

func TestSSTableRoundTrip(t *testing.T) {
	b := newSSTBuilder()
	var want []entry
	for i := 0; i < 1000; i++ {
		e := entry{
			key:   []byte(fmt.Sprintf("key%06d", i)),
			value: bytes.Repeat([]byte{byte(i)}, i%100),
			seq:   uint64(i + 1),
			kind:  kindPut,
		}
		want = append(want, e)
		b.add(&e)
	}
	obj := b.finish()

	mem := oss.NewMem()
	db, _ := Open(mem, Options{})
	meta := tableMeta{Name: "t.sst", Size: int64(len(obj)), Count: 1000, Smallest: []byte("key000000"), Largest: []byte("key000999")}
	mem.Put(db.tableKey("t.sst"), obj)
	r, err := db.openTable(meta)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.index) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(r.index))
	}
	for _, e := range want {
		got, ok, err := r.get(e.key)
		if err != nil || !ok {
			t.Fatalf("get(%s) = %v, %v", e.key, ok, err)
		}
		if !bytes.Equal(got.value, e.value) || got.seq != e.seq {
			t.Fatalf("get(%s) wrong entry", e.key)
		}
	}
	all, err := r.allEntries()
	if err != nil || len(all) != 1000 {
		t.Fatalf("allEntries = %d, %v", len(all), err)
	}
}

// Property: a model map and the DB agree under random workloads with
// interleaved flushes and compactions.
func TestQuickModelCheck(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
		Del bool
	}) bool {
		db, err := Open(oss.NewMem(), smallOpts())
		if err != nil {
			return false
		}
		model := map[string]string{}
		for i, op := range ops {
			k := fmt.Sprintf("key%d", op.Key%32)
			if op.Del {
				if db.Delete([]byte(k)) != nil {
					return false
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("val%d", op.Val)
				if db.Put([]byte(k), []byte(v)) != nil {
					return false
				}
				model[k] = v
			}
			if i%13 == 0 {
				if db.Flush() != nil {
					return false
				}
			}
		}
		if db.Compact() != nil {
			return false
		}
		for k, v := range model {
			got, ok, err := db.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		n := 0
		db.Scan(nil, nil, func(k, v []byte) bool {
			if model[string(k)] != string(v) {
				n = -1 << 30
			}
			n++
			return true
		})
		return n == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKVPut(b *testing.B) {
	db, _ := Open(oss.NewMem(), Options{})
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Put([]byte(fmt.Sprintf("key%08d", i)), val)
	}
}

func BenchmarkKVGet(b *testing.B) {
	db, _ := Open(oss.NewMem(), Options{})
	val := make([]byte, 64)
	for i := 0; i < 10000; i++ {
		db.Put([]byte(fmt.Sprintf("key%08d", i)), val)
	}
	db.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("key%08d", i%10000)))
	}
}

func TestBlockCacheHits(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	db.Flush()
	// Repeated lookups of the same key hit the cached block after the
	// first read.
	for i := 0; i < 10; i++ {
		if _, ok, err := db.Get([]byte("key0007")); err != nil || !ok {
			t.Fatalf("Get: %v, %v", ok, err)
		}
	}
	st := db.Stats()
	if st.BlockCacheHits < 8 {
		t.Fatalf("block cache hits = %d, want >= 8 (reads %d)", st.BlockCacheHits, st.TableReads)
	}
}

func TestBlockCacheDisabled(t *testing.T) {
	opts := smallOpts()
	opts.BlockCacheBytes = -1
	db, _ := Open(oss.NewMem(), opts)
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v"))
	}
	db.Flush()
	for i := 0; i < 5; i++ {
		db.Get([]byte("key0001"))
	}
	if st := db.Stats(); st.BlockCacheHits != 0 {
		t.Fatalf("disabled cache recorded %d hits", st.BlockCacheHits)
	}
}

func TestBlockCacheEviction(t *testing.T) {
	c := newBlockCache(100)
	es := []entry{{key: []byte("k")}}
	c.put(blockKey{"t1", 0}, es, 60)
	c.put(blockKey{"t2", 0}, es, 60) // evicts t1
	if _, ok := c.get(blockKey{"t1", 0}); ok {
		t.Fatal("t1 survived eviction")
	}
	if _, ok := c.get(blockKey{"t2", 0}); !ok {
		t.Fatal("t2 missing")
	}
	// Oversized blocks are not admitted.
	c.put(blockKey{"t3", 0}, es, 1000)
	if _, ok := c.get(blockKey{"t3", 0}); ok {
		t.Fatal("oversized block admitted")
	}
	// drop removes a table's blocks.
	c.put(blockKey{"t2", 16}, es, 20)
	c.drop("t2")
	if _, ok := c.get(blockKey{"t2", 0}); ok {
		t.Fatal("drop left t2 blocks")
	}
	// nil cache is inert.
	var nc *blockCache
	nc.put(blockKey{"x", 0}, es, 1)
	if _, ok := nc.get(blockKey{"x", 0}); ok {
		t.Fatal("nil cache returned a block")
	}
	nc.drop("x")
}

func TestIterator(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%04d", i)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		want[k] = v
		if i%37 == 0 {
			db.Flush()
		}
	}
	// Overwrites and deletes across layers.
	for i := 0; i < 300; i += 3 {
		k := fmt.Sprintf("k%04d", i)
		v := fmt.Sprintf("new%d", i)
		db.Put([]byte(k), []byte(v))
		want[k] = v
	}
	for i := 1; i < 300; i += 10 {
		k := fmt.Sprintf("k%04d", i)
		db.Delete([]byte(k))
		delete(want, k)
	}

	it, err := db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	var prev string
	for it.Next() {
		k := string(it.Key())
		if prev != "" && k <= prev {
			t.Fatalf("keys out of order: %q after %q", k, prev)
		}
		prev = k
		got[k] = string(it.Value())
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s = %q, want %q", k, got[k], v)
		}
	}
}

func TestIteratorRange(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v"))
	}
	db.Flush()
	it, err := db.NewIterator([]byte("k020"), []byte("k030"))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for it.Next() {
		k := string(it.Key())
		if k < "k020" || k >= "k030" {
			t.Fatalf("key %q outside range", k)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("range iterated %d keys, want 10", n)
	}
	if it.Valid() {
		t.Fatal("iterator valid after exhaustion")
	}
}

func TestIteratorEmptyAndClosed(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	it, err := db.NewIterator(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if it.Next() {
		t.Fatal("empty DB iterated a key")
	}
	db.Close()
	if _, err := db.NewIterator(nil, nil); err != ErrClosed {
		t.Fatalf("NewIterator after close = %v", err)
	}
}

func TestConcurrentReadersAndWriter(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	for i := 0; i < 200; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte("v0"))
	}
	db.Flush()
	done := make(chan error, 5)
	// One writer mutating...
	go func() {
		for i := 0; i < 500; i++ {
			if err := db.Put([]byte(fmt.Sprintf("k%04d", i%200)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	// ...four readers hammering gets.
	for w := 0; w < 4; w++ {
		go func(w int) {
			for i := 0; i < 500; i++ {
				if _, _, err := db.Get([]byte(fmt.Sprintf("k%04d", (i+w)%200))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// Property: Iterator and Scan agree on the live keyspace for random
// workloads with interleaved flushes.
func TestQuickIteratorMatchesScan(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Del bool
	}) bool {
		db, err := Open(oss.NewMem(), smallOpts())
		if err != nil {
			return false
		}
		for i, op := range ops {
			k := []byte(fmt.Sprintf("key%d", op.Key%24))
			if op.Del {
				db.Delete(k)
			} else {
				db.Put(k, []byte(fmt.Sprintf("v%d", i)))
			}
			if i%11 == 0 {
				db.Flush()
			}
		}
		fromScan := map[string]string{}
		db.Scan(nil, nil, func(k, v []byte) bool {
			fromScan[string(k)] = string(v)
			return true
		})
		it, err := db.NewIterator(nil, nil)
		if err != nil {
			return false
		}
		fromIter := map[string]string{}
		for it.Next() {
			fromIter[string(it.Key())] = string(it.Value())
		}
		if len(fromScan) != len(fromIter) {
			return false
		}
		for k, v := range fromScan {
			if fromIter[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBinaryKeysSurviveManifestReload pins down a durability bug found by
// the chaos harness: table key bounds stored as Go strings were mangled by
// the JSON manifest round-trip (encoding/json replaces invalid UTF-8 with
// U+FFFD), so after a reopen the leveled-Get range check skipped tables and
// point lookups durably missed keys that a full Scan still found. Binary
// keys (like fingerprints) must survive flush, compaction into L1, and a
// fresh Open.
func TestBinaryKeysSurviveManifestReload(t *testing.T) {
	mem := oss.NewMem()
	db, err := Open(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	keys := make([][]byte, 500)
	for i := range keys {
		k := make([]byte, 20)
		rng.Read(k) // arbitrary bytes: most are invalid UTF-8
		keys[i] = k
		if err := db.Put(k, []byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
		// Periodic flushes build several L0 tables and force at least one
		// compaction into a bounded deeper level.
		if i%100 == 99 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	var deep bool
	for _, m := range db.man.Tables {
		if m.Level > 0 {
			deep = true
		}
	}
	if !deep {
		t.Fatal("setup did not push any table below L0")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		v, ok, err := re.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("key %d lost after reopen (durable point-get miss)", i)
		}
		if v[0] != byte(i) || v[1] != byte(i>>8) {
			t.Fatalf("key %d: wrong value %v", i, v)
		}
	}
}
