// Package kvstore implements "Rocks-OSS" (paper §III-B): a log-structured
// merge-tree key-value store adapted to object storage, used as the global
// fingerprint index that G-node consults for exact reverse deduplication.
//
// The design mirrors a classic LSM engine — write-ahead log, in-memory
// skiplist memtable, immutable block-based SSTables with per-table bloom
// filters, a manifest describing the level structure, and leveled
// compaction — with every persistent structure stored as OSS objects.
// Point lookups cost at most one ranged OSS read per consulted table (the
// bloom filter and index block are cached), which is the access profile
// the paper's G-node depends on.
package kvstore

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"slimstore/internal/oss"
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("kvstore: closed")

// Options tune the LSM engine.
type Options struct {
	// Prefix is the OSS key namespace, default "kv/".
	Prefix string
	// MemtableBytes triggers a flush when the memtable grows past it.
	MemtableBytes int64
	// WALFlushBytes triggers persisting the WAL buffer as a segment.
	WALFlushBytes int
	// L0Threshold is the number of L0 tables that triggers compaction.
	L0Threshold int
	// TargetFileBytes is the compaction output table size.
	TargetFileBytes int64
	// LevelRatio is the size multiplier between levels.
	LevelRatio int
	// MaxLevels bounds the level count (L0..L<MaxLevels-1>).
	MaxLevels int
	// BlockCacheBytes bounds the decoded-block LRU cache (0 = default
	// 8 MiB, negative = disabled).
	BlockCacheBytes int64
}

func (o *Options) fillDefaults() {
	if o.Prefix == "" {
		o.Prefix = "kv/"
	}
	if o.MemtableBytes <= 0 {
		o.MemtableBytes = 4 << 20
	}
	if o.WALFlushBytes <= 0 {
		o.WALFlushBytes = 256 << 10
	}
	if o.L0Threshold <= 0 {
		o.L0Threshold = 4
	}
	if o.TargetFileBytes <= 0 {
		o.TargetFileBytes = 4 << 20
	}
	if o.LevelRatio <= 0 {
		o.LevelRatio = 10
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 4
	}
	if o.BlockCacheBytes == 0 {
		o.BlockCacheBytes = 8 << 20
	}
}

// Stats counts engine activity.
type Stats struct {
	Puts, Gets, Deletes  int64
	BloomNegative        int64 // table lookups short-circuited by the filter
	TableReads           int64 // data block fetches from OSS
	BlockCacheHits       int64 // data block fetches served from the cache
	Flushes, Compactions int64
	TablesLive           int
	WALSegments          int
}

// manifest is the persistent level structure, stored as JSON at
// <prefix>MANIFEST and rewritten atomically on every flush/compaction.
type manifest struct {
	NextTable uint64      `json:"next_table"`
	LastSeq   uint64      `json:"last_seq"`
	Tables    []tableMeta `json:"tables"`
}

// DB is the LSM store. All methods are safe for concurrent use.
type DB struct {
	store oss.Store
	opts  Options

	mu      sync.Mutex
	mem     *skiplist
	walBuf  []byte
	walSegs []uint64 // live WAL segment numbers, ascending
	nextWAL uint64
	seq     uint64
	man     manifest
	readers map[string]*tableReader
	blocks  *blockCache
	stats   Stats
	closed  bool
}

func (db *DB) tableKey(name string) string { return db.opts.Prefix + "sst/" + name }
func (db *DB) walKey(n uint64) string      { return fmt.Sprintf("%swal/%016d", db.opts.Prefix, n) }
func (db *DB) manifestKey() string         { return db.opts.Prefix + "MANIFEST" }

// Open opens or creates a DB over the given OSS store.
func Open(store oss.Store, opts Options) (*DB, error) {
	opts.fillDefaults()
	db := &DB{
		store:   store,
		opts:    opts,
		mem:     newSkiplist(1),
		readers: make(map[string]*tableReader),
	}
	if opts.BlockCacheBytes > 0 {
		db.blocks = newBlockCache(opts.BlockCacheBytes)
	}
	// Load the manifest if present.
	b, err := store.Get(db.manifestKey())
	switch {
	case err == nil:
		if err := json.Unmarshal(b, &db.man); err != nil {
			return nil, fmt.Errorf("kvstore: parse manifest: %w", err)
		}
	case errors.Is(err, oss.ErrNotFound):
		// Fresh database.
	default:
		return nil, fmt.Errorf("kvstore: read manifest: %w", err)
	}
	db.seq = db.man.LastSeq

	// Replay surviving WAL segments (those not deleted by a completed
	// flush) into the memtable.
	walKeys, err := store.List(opts.Prefix + "wal/")
	if err != nil {
		return nil, fmt.Errorf("kvstore: list wal: %w", err)
	}
	sort.Strings(walKeys)
	for i, k := range walKeys {
		seg, err := store.Get(k)
		if err != nil {
			return nil, fmt.Errorf("kvstore: read wal %s: %w", k, err)
		}
		entries, derr := decodeWALSegment(seg)
		if derr != nil {
			// A record torn off the end of the FINAL segment is the
			// signature of a crash mid-append: the decoded prefix is the
			// durable part, the tail was never acknowledged. Anywhere
			// else (earlier segment, or a CRC mismatch on a complete
			// record) it is corruption and must fail recovery.
			if !errors.Is(derr, errTruncatedWAL) || i != len(walKeys)-1 {
				return nil, fmt.Errorf("kvstore: replay %s: %w", k, derr)
			}
		}
		for i := range entries {
			db.mem.insert(entries[i])
			if entries[i].seq > db.seq {
				db.seq = entries[i].seq
			}
		}
		n, perr := strconv.ParseUint(strings.TrimPrefix(k, opts.Prefix+"wal/"), 10, 64)
		if perr == nil {
			db.walSegs = append(db.walSegs, n)
			if n >= db.nextWAL {
				db.nextWAL = n + 1
			}
		}
	}
	return db, nil
}

// Put stores a key-value pair.
func (db *DB) Put(key, value []byte) error {
	return db.write(entry{key: append([]byte{}, key...), value: append([]byte{}, value...), kind: kindPut})
}

// Delete removes a key (writes a tombstone).
func (db *DB) Delete(key []byte) error {
	return db.write(entry{key: append([]byte{}, key...), kind: kindDelete})
}

func (db *DB) write(e entry) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	db.seq++
	e.seq = db.seq
	db.walBuf = appendWALRecord(db.walBuf, &e)
	db.mem.insert(e)
	if e.kind == kindPut {
		db.stats.Puts++
	} else {
		db.stats.Deletes++
	}
	if len(db.walBuf) >= db.opts.WALFlushBytes {
		if err := db.flushWALLocked(); err != nil {
			return err
		}
	}
	if db.mem.bytes >= db.opts.MemtableBytes {
		if err := db.flushMemLocked(); err != nil {
			return err
		}
		return db.maybeCompactLocked()
	}
	return nil
}

// Sync persists buffered WAL records, making all prior writes durable.
func (db *DB) Sync() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.flushWALLocked()
}

func (db *DB) flushWALLocked() error {
	if len(db.walBuf) == 0 {
		return nil
	}
	n := db.nextWAL
	db.nextWAL++
	if err := db.store.Put(db.walKey(n), db.walBuf); err != nil {
		return fmt.Errorf("kvstore: flush wal: %w", err)
	}
	db.walSegs = append(db.walSegs, n)
	db.walBuf = db.walBuf[:0]
	return nil
}

// Flush persists the memtable as an L0 table.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.flushMemLocked(); err != nil {
		return err
	}
	return db.maybeCompactLocked()
}

func (db *DB) flushMemLocked() error {
	if db.mem.count == 0 {
		return nil
	}
	// Make sure everything in the memtable is durable before the table
	// write; a crash mid-flush then replays the WAL.
	if err := db.flushWALLocked(); err != nil {
		return err
	}
	b := newSSTBuilder()
	for it := db.mem.iter(); it.valid(); it.next() {
		b.add(it.cur())
	}
	meta, err := db.writeTableLocked(b, 0)
	if err != nil {
		return err
	}
	db.man.Tables = append(db.man.Tables, meta)
	db.man.LastSeq = db.seq
	if err := db.saveManifestLocked(); err != nil {
		return err
	}
	// The flushed table covers every WAL segment; drop them.
	for _, n := range db.walSegs {
		if err := db.store.Delete(db.walKey(n)); err != nil {
			return fmt.Errorf("kvstore: drop wal segment: %w", err)
		}
	}
	db.walSegs = db.walSegs[:0]
	db.mem = newSkiplist(int64(db.seq))
	db.stats.Flushes++
	return nil
}

func (db *DB) writeTableLocked(b *sstBuilder, level int) (tableMeta, error) {
	db.man.NextTable++
	name := fmt.Sprintf("%08d.sst", db.man.NextTable)
	obj := b.finish()
	if err := db.store.Put(db.tableKey(name), obj); err != nil {
		return tableMeta{}, fmt.Errorf("kvstore: write table: %w", err)
	}
	return tableMeta{
		Name:     name,
		Level:    level,
		Size:     int64(len(obj)),
		Count:    b.count,
		Smallest: append([]byte(nil), b.smallest...),
		Largest:  append([]byte(nil), b.largest...),
		MaxSeq:   b.maxSeq,
	}, nil
}

func (db *DB) saveManifestLocked() error {
	b, err := json.Marshal(&db.man)
	if err != nil {
		return fmt.Errorf("kvstore: encode manifest: %w", err)
	}
	if err := db.store.Put(db.manifestKey(), b); err != nil {
		return fmt.Errorf("kvstore: save manifest: %w", err)
	}
	return nil
}

func (db *DB) readerLocked(meta tableMeta) (*tableReader, error) {
	if r, ok := db.readers[meta.Name]; ok {
		return r, nil
	}
	r, err := db.openTable(meta)
	if err != nil {
		return nil, err
	}
	db.readers[meta.Name] = r
	return r, nil
}

// Get returns the value for key. found is false for missing or deleted keys.
func (db *DB) Get(key []byte) (value []byte, found bool, err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, false, ErrClosed
	}
	db.stats.Gets++
	if e, ok := db.mem.get(key); ok {
		if e.kind == kindDelete {
			return nil, false, nil
		}
		return append([]byte{}, e.value...), true, nil
	}
	// L0: newest table first.
	l0 := db.tablesAtLocked(0)
	sort.Slice(l0, func(i, j int) bool { return l0[i].MaxSeq > l0[j].MaxSeq })
	for _, meta := range l0 {
		e, ok, err := db.tableGetLocked(meta, key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.kind == kindDelete {
				return nil, false, nil
			}
			return e.value, true, nil
		}
	}
	// Deeper levels: tables are disjoint; binary search by range.
	for level := 1; level < db.opts.MaxLevels; level++ {
		tables := db.tablesAtLocked(level)
		i := sort.Search(len(tables), func(i int) bool {
			return bytes.Compare(tables[i].Largest, key) >= 0
		})
		if i < len(tables) && bytes.Compare(tables[i].Smallest, key) <= 0 {
			e, ok, err := db.tableGetLocked(tables[i], key)
			if err != nil {
				return nil, false, err
			}
			if ok {
				if e.kind == kindDelete {
					return nil, false, nil
				}
				return e.value, true, nil
			}
		}
	}
	return nil, false, nil
}

func (db *DB) tableGetLocked(meta tableMeta, key []byte) (entry, bool, error) {
	r, err := db.readerLocked(meta)
	if err != nil {
		return entry{}, false, err
	}
	if !r.filter.mayContain(key) {
		db.stats.BloomNegative++
		return entry{}, false, nil
	}
	return r.get(key)
}

// tablesAtLocked returns the tables at a level sorted by smallest key.
func (db *DB) tablesAtLocked(level int) []tableMeta {
	var out []tableMeta
	for _, t := range db.man.Tables {
		if t.Level == level {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return bytes.Compare(out[i].Smallest, out[j].Smallest) < 0 })
	return out
}

// ---------------------------------------------------------------------------
// Compaction.

func (db *DB) levelTarget(level int) int64 {
	t := db.opts.TargetFileBytes * int64(db.opts.LevelRatio)
	for i := 1; i < level; i++ {
		t *= int64(db.opts.LevelRatio)
	}
	return t
}

func (db *DB) maybeCompactLocked() error {
	for {
		did := false
		if len(db.tablesAtLocked(0)) >= db.opts.L0Threshold {
			if err := db.compactLevelLocked(0); err != nil {
				return err
			}
			did = true
		}
		for level := 1; level < db.opts.MaxLevels-1; level++ {
			var size int64
			for _, t := range db.tablesAtLocked(level) {
				size += t.Size
			}
			if size > db.levelTarget(level) {
				if err := db.compactLevelLocked(level); err != nil {
					return err
				}
				did = true
			}
		}
		if !did {
			return nil
		}
	}
}

// Compact forces a full compaction pass (flush + push everything down one
// level at a time until stable). Useful in tests and before space audits.
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.flushMemLocked(); err != nil {
		return err
	}
	for level := 0; level < db.opts.MaxLevels-1; level++ {
		if len(db.tablesAtLocked(level)) > 0 {
			if err := db.compactLevelLocked(level); err != nil {
				return err
			}
		}
	}
	return nil
}

func overlaps(aMin, aMax, bMin, bMax []byte) bool {
	return bytes.Compare(aMin, bMax) <= 0 && bytes.Compare(bMin, aMax) <= 0
}

func (db *DB) compactLevelLocked(level int) error {
	outLevel := level + 1
	if outLevel >= db.opts.MaxLevels {
		return nil
	}

	// Inputs: at L0 every table (they may overlap each other); at deeper
	// levels the first table by key order.
	var inputs []tableMeta
	if level == 0 {
		inputs = db.tablesAtLocked(0)
	} else {
		ts := db.tablesAtLocked(level)
		if len(ts) == 0 {
			return nil
		}
		inputs = ts[:1]
	}
	if len(inputs) == 0 {
		return nil
	}
	min, max := inputs[0].Smallest, inputs[0].Largest
	for _, t := range inputs[1:] {
		if bytes.Compare(t.Smallest, min) < 0 {
			min = t.Smallest
		}
		if bytes.Compare(t.Largest, max) > 0 {
			max = t.Largest
		}
	}
	// Pull in overlapping outLevel tables until a fixpoint: each included
	// table can widen [min, max], which can overlap further tables. Stopping
	// early would leave outLevel tables overlapping the compaction output,
	// breaking the disjointness the level Get relies on.
	taken := make(map[string]bool, len(inputs))
	for {
		grew := false
		for _, t := range db.tablesAtLocked(outLevel) {
			if taken[t.Name] || !overlaps(min, max, t.Smallest, t.Largest) {
				continue
			}
			taken[t.Name] = true
			inputs = append(inputs, t)
			if bytes.Compare(t.Smallest, min) < 0 {
				min = t.Smallest
			}
			if bytes.Compare(t.Largest, max) > 0 {
				max = t.Largest
			}
			grew = true
		}
		if !grew {
			break
		}
	}

	// Merge all input entries in internal order.
	var all []entry
	for _, meta := range inputs {
		r, err := db.readerLocked(meta)
		if err != nil {
			return err
		}
		es, err := r.allEntries()
		if err != nil {
			return err
		}
		all = append(all, es...)
	}
	sort.SliceStable(all, func(i, j int) bool { return internalLess(&all[i], &all[j]) })

	// Keep only the newest version of each key; drop tombstones when the
	// output is the bottom level (nothing deeper can be shadowed).
	bottom := outLevel == db.opts.MaxLevels-1 || !db.hasTablesBelowLocked(outLevel)
	var outTables []tableMeta
	b := newSSTBuilder()
	var prevKey []byte
	flushOut := func() error {
		if b.count == 0 {
			return nil
		}
		meta, err := db.writeTableLocked(b, outLevel)
		if err != nil {
			return err
		}
		outTables = append(outTables, meta)
		b = newSSTBuilder()
		return nil
	}
	for i := range all {
		e := &all[i]
		if prevKey != nil && bytes.Equal(e.key, prevKey) {
			continue // older version of the same key
		}
		prevKey = e.key
		if e.kind == kindDelete && bottom {
			continue
		}
		b.add(e)
		if int64(b.buf.Len()) >= db.opts.TargetFileBytes {
			if err := flushOut(); err != nil {
				return err
			}
		}
	}
	if err := flushOut(); err != nil {
		return err
	}

	// Install: drop inputs, add outputs, persist, delete input objects.
	dead := make(map[string]bool, len(inputs))
	for _, t := range inputs {
		dead[t.Name] = true
	}
	kept := db.man.Tables[:0]
	for _, t := range db.man.Tables {
		if !dead[t.Name] {
			kept = append(kept, t)
		}
	}
	db.man.Tables = append(kept, outTables...)
	if err := db.saveManifestLocked(); err != nil {
		return err
	}
	for name := range dead {
		delete(db.readers, name)
		db.blocks.drop(name)
		if err := db.store.Delete(db.tableKey(name)); err != nil {
			return fmt.Errorf("kvstore: delete compacted table: %w", err)
		}
	}
	db.stats.Compactions++
	return nil
}

func (db *DB) hasTablesBelowLocked(level int) bool {
	for _, t := range db.man.Tables {
		if t.Level > level {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------

// Scan visits live key-value pairs with start <= key < end in key order
// (end == nil means unbounded). fn returning false stops the scan.
func (db *DB) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	// Gather all sources into one merged slice. Simple and correct; scans
	// are used by offline jobs (G-node audits), not the hot path.
	var all []entry
	for it := db.mem.iter(); it.valid(); it.next() {
		all = append(all, *it.cur())
	}
	for _, meta := range db.man.Tables {
		if end != nil && bytes.Compare(meta.Smallest, end) >= 0 {
			continue
		}
		if start != nil && bytes.Compare(meta.Largest, start) < 0 {
			continue
		}
		r, err := db.readerLocked(meta)
		if err != nil {
			return err
		}
		es, err := r.allEntries()
		if err != nil {
			return err
		}
		all = append(all, es...)
	}
	sort.SliceStable(all, func(i, j int) bool { return internalLess(&all[i], &all[j]) })
	var prevKey []byte
	for i := range all {
		e := &all[i]
		if start != nil && bytes.Compare(e.key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(e.key, end) >= 0 {
			break
		}
		if prevKey != nil && bytes.Equal(e.key, prevKey) {
			continue
		}
		prevKey = e.key
		if e.kind == kindDelete {
			continue
		}
		if !fn(e.key, e.value) {
			return nil
		}
	}
	return nil
}

// Stats returns a snapshot of engine counters.
func (db *DB) Stats() Stats {
	db.mu.Lock()
	defer db.mu.Unlock()
	s := db.stats
	s.TablesLive = len(db.man.Tables)
	s.WALSegments = len(db.walSegs)
	return s
}

// Close flushes buffered WAL records and marks the DB closed. The memtable
// is intentionally not flushed to a table: recovery replays the WAL.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if err := db.flushWALLocked(); err != nil {
		return err
	}
	db.closed = true
	return nil
}
