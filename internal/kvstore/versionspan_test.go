package kvstore

import (
	"bytes"
	"fmt"
	"testing"

	"slimstore/internal/oss"
)

// Regression tests for stale reads when one key's version run spans an
// SST block boundary. Entries are laid out key ASC, seq DESC, so every
// block of the run past the first STARTS with the key but holds only its
// older versions; a point lookup that maps the key to the last block with
// firstKey <= key resolves to a stale version while Scan (a full merge)
// returns the newest. Get, GetMulti, and Scan must always agree.

func spanValue(k string, v int) []byte {
	buf := bytes.Repeat([]byte{0xab}, 2048)
	copy(buf, fmt.Sprintf("%s#%04d", k, v))
	return buf
}

func TestGetNewestAcrossBlockBoundary(t *testing.T) {
	b := newSSTBuilder()
	keys := []string{"alpha", "hot", "zeta"}
	const versions = 40
	for i, k := range keys {
		base := uint64(1000 * (i + 1))
		for v := versions; v >= 1; v-- {
			e := entry{key: []byte(k), seq: base + uint64(v), kind: kindPut, value: spanValue(k, v)}
			b.add(&e)
		}
	}
	obj := b.finish()

	mem := oss.NewMem()
	db, err := Open(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta := tableMeta{
		Name:     "v.sst",
		Size:     int64(len(obj)),
		Count:    versions * len(keys),
		Smallest: []byte(keys[0]),
		Largest:  []byte(keys[len(keys)-1]),
	}
	if err := mem.Put(db.tableKey("v.sst"), obj); err != nil {
		t.Fatal(err)
	}
	r, err := db.openTable(meta)
	if err != nil {
		t.Fatal(err)
	}
	// The bug needs a version run to cross block boundaries: 40 versions
	// of ~2KB against 16KB blocks give every key a multi-block run.
	if len(r.index) < len(keys)+1 {
		t.Fatalf("only %d blocks, version runs do not span boundaries", len(r.index))
	}
	for i, k := range keys {
		got, ok, err := r.get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("get(%s) = %v, %v", k, ok, err)
		}
		wantSeq := uint64(1000*(i+1) + versions)
		if got.seq != wantSeq {
			t.Errorf("get(%s) returned stale version seq=%d, want newest seq=%d", k, got.seq, wantSeq)
		}
		if want := spanValue(k, versions); !bytes.Equal(got.value, want) {
			t.Errorf("get(%s) value = %.12q..., want %.12q...", k, got.value, want)
		}
	}
}

func TestDBGetMatchesScanManyVersions(t *testing.T) {
	mem := oss.NewMem()
	db, err := Open(mem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	keys := []string{"k0", "k1", "k2", "k3"}
	const versions = 60
	for v := 1; v <= versions; v++ {
		for _, k := range keys {
			if err := db.Put([]byte(k), spanValue(k, v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	// Scan merges every table in internal order and is the oracle for
	// "newest version wins".
	oracle := map[string][]byte{}
	err = db.Scan(nil, nil, func(key, value []byte) bool {
		oracle[string(key)] = append([]byte{}, value...)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != len(keys) {
		t.Fatalf("scan saw %d keys, want %d", len(oracle), len(keys))
	}

	for _, k := range keys {
		got, ok, err := db.Get([]byte(k))
		if err != nil || !ok {
			t.Fatalf("Get(%s) = %v, %v", k, ok, err)
		}
		if !bytes.Equal(got, oracle[k]) {
			t.Errorf("Get(%s) = %.12q..., Scan says %.12q...", k, got, oracle[k])
		}
	}

	probe := [][]byte{[]byte("k0"), []byte("absent"), []byte("k1"), []byte("k2"), []byte("k3")}
	values, found, err := db.GetMulti(probe)
	if err != nil {
		t.Fatal(err)
	}
	if found[1] {
		t.Error("GetMulti found a key that was never written")
	}
	for i, k := range probe {
		if i == 1 {
			continue
		}
		if !found[i] {
			t.Fatalf("GetMulti missed %s", k)
		}
		if !bytes.Equal(values[i], oracle[string(k)]) {
			t.Errorf("GetMulti(%s) = %.12q..., Scan says %.12q...", k, values[i], oracle[string(k)])
		}
	}
}
