package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// SSTable on-disk format (one OSS object per table):
//
//	[data block]*  [filter block]  [index block]  [footer]
//
// Data block entries, little endian:
//
//	klen u32 | key | seq u64 | kind u8 | vlen u32 | value
//
// Index block:
//
//	count u32 | ( klen u32 | firstKey | off u64 | len u64 )*
//
// Filter block: a bloom filter over user keys:
//
//	mBits u32 | k u32 | words u64*
//
// Footer (fixed 40 bytes at the object's tail):
//
//	filterOff u64 | filterLen u64 | indexOff u64 | indexLen u64 | magic u64
//
// Point lookups read the footer+index+filter once (cached by tableReader)
// and then fetch a single data block with a ranged OSS read, mirroring how
// Rocks-OSS serves G-node lookups with one remote read per miss.

const (
	sstMagic        = uint64(0x534C4D53_53540001) // "SLMSST" + version
	targetBlockSize = 16 << 10
	footerSize      = 40
)

// entryKind distinguishes puts from deletion tombstones.
type entryKind uint8

const (
	kindPut entryKind = iota
	kindDelete
)

// entry is an internal LSM entry.
type entry struct {
	key   []byte
	value []byte
	seq   uint64
	kind  entryKind
}

// ---------------------------------------------------------------------------
// Key bloom filter (over arbitrary byte keys; cbf works on fingerprints).

type keyBloom struct {
	words []uint64
	mBits uint32
	k     uint32
}

func newKeyBloom(n int, bitsPerKey int) *keyBloom {
	if n < 1 {
		n = 1
	}
	m := n * bitsPerKey
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(bitsPerKey) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 12 {
		k = 12
	}
	return &keyBloom{words: make([]uint64, (m+63)/64), mBits: uint32(m), k: uint32(k)}
}

func keyHash2(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	h2 := h1>>33 | h1<<31
	h2 |= 1
	return h1, h2
}

func (b *keyBloom) add(key []byte) {
	h1, h2 := keyHash2(key)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % uint64(b.mBits)
		b.words[bit/64] |= 1 << (bit % 64)
	}
}

func (b *keyBloom) mayContain(key []byte) bool {
	h1, h2 := keyHash2(key)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % uint64(b.mBits)
		if b.words[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

func (b *keyBloom) encode() []byte {
	buf := make([]byte, 8+8*len(b.words))
	binary.LittleEndian.PutUint32(buf, b.mBits)
	binary.LittleEndian.PutUint32(buf[4:], b.k)
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(buf[8+8*i:], w)
	}
	return buf
}

func decodeKeyBloom(buf []byte) (*keyBloom, error) {
	if len(buf) < 8 || (len(buf)-8)%8 != 0 {
		return nil, fmt.Errorf("kvstore: bad filter block size %d", len(buf))
	}
	b := &keyBloom{
		mBits: binary.LittleEndian.Uint32(buf),
		k:     binary.LittleEndian.Uint32(buf[4:]),
		words: make([]uint64, (len(buf)-8)/8),
	}
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(buf[8+8*i:])
	}
	return b, nil
}

// ---------------------------------------------------------------------------
// Builder.

type blockHandle struct {
	firstKey []byte
	off, n   uint64
}

// sstBuilder serialises a sorted entry stream into the table format.
type sstBuilder struct {
	buf      bytes.Buffer
	block    bytes.Buffer
	blockKey []byte
	index    []blockHandle
	keys     [][]byte
	count    int
	smallest []byte
	largest  []byte
	maxSeq   uint64
}

func newSSTBuilder() *sstBuilder { return &sstBuilder{} }

// add appends an entry; entries must arrive in internal order.
func (b *sstBuilder) add(e *entry) {
	if b.smallest == nil {
		b.smallest = append([]byte{}, e.key...)
	}
	b.largest = append(b.largest[:0], e.key...)
	if e.seq > b.maxSeq {
		b.maxSeq = e.seq
	}
	if b.block.Len() == 0 {
		b.blockKey = append([]byte{}, e.key...)
	}
	var hdr [4 + 8 + 1 + 4]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(e.key)))
	b.block.Write(hdr[:4])
	b.block.Write(e.key)
	binary.LittleEndian.PutUint64(hdr[0:], e.seq)
	hdr[8] = byte(e.kind)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(e.value)))
	b.block.Write(hdr[:13])
	b.block.Write(e.value)
	b.keys = append(b.keys, append([]byte{}, e.key...))
	b.count++
	if b.block.Len() >= targetBlockSize {
		b.finishBlock()
	}
}

func (b *sstBuilder) finishBlock() {
	if b.block.Len() == 0 {
		return
	}
	b.index = append(b.index, blockHandle{
		firstKey: b.blockKey,
		off:      uint64(b.buf.Len()),
		n:        uint64(b.block.Len()),
	})
	b.buf.Write(b.block.Bytes())
	b.block.Reset()
	b.blockKey = nil
}

// finish completes the table and returns the serialized object.
func (b *sstBuilder) finish() []byte {
	b.finishBlock()

	filter := newKeyBloom(len(b.keys), 10)
	for _, k := range b.keys {
		filter.add(k)
	}
	filterOff := uint64(b.buf.Len())
	fb := filter.encode()
	b.buf.Write(fb)

	indexOff := uint64(b.buf.Len())
	var idx bytes.Buffer
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(b.index)))
	idx.Write(tmp[:4])
	for _, h := range b.index {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(h.firstKey)))
		idx.Write(tmp[:4])
		idx.Write(h.firstKey)
		binary.LittleEndian.PutUint64(tmp[:], h.off)
		idx.Write(tmp[:])
		binary.LittleEndian.PutUint64(tmp[:], h.n)
		idx.Write(tmp[:])
	}
	b.buf.Write(idx.Bytes())

	var footer [footerSize]byte
	binary.LittleEndian.PutUint64(footer[0:], filterOff)
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(fb)))
	binary.LittleEndian.PutUint64(footer[16:], indexOff)
	binary.LittleEndian.PutUint64(footer[24:], uint64(idx.Len()))
	binary.LittleEndian.PutUint64(footer[32:], sstMagic)
	b.buf.Write(footer[:])
	return b.buf.Bytes()
}

// ---------------------------------------------------------------------------
// Reader.

// tableMeta describes one SSTable in the manifest.
type tableMeta struct {
	Name  string `json:"name"`
	Level int    `json:"level"`
	Size  int64  `json:"size"`
	Count int    `json:"count"`
	// Smallest/Largest are raw key bytes. They must be []byte, not string:
	// the manifest is JSON, and encoding/json silently rewrites invalid
	// UTF-8 in strings to U+FFFD, which corrupts binary key bounds on
	// reload ([]byte round-trips losslessly as base64).
	Smallest []byte `json:"smallest"`
	Largest  []byte `json:"largest"`
	MaxSeq   uint64 `json:"max_seq"`
}

// tableReader serves lookups from one SSTable, caching the index and
// filter blocks in memory while fetching data blocks on demand.
type tableReader struct {
	db     *DB
	meta   tableMeta
	index  []blockHandle
	filter *keyBloom
}

func (db *DB) openTable(meta tableMeta) (*tableReader, error) {
	key := db.tableKey(meta.Name)
	foot, err := db.store.GetRange(key, meta.Size-footerSize, footerSize)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: footer: %w", meta.Name, err)
	}
	if len(foot) != footerSize || binary.LittleEndian.Uint64(foot[32:]) != sstMagic {
		return nil, fmt.Errorf("kvstore: open %s: bad footer", meta.Name)
	}
	filterOff := binary.LittleEndian.Uint64(foot[0:])
	filterLen := binary.LittleEndian.Uint64(foot[8:])
	indexOff := binary.LittleEndian.Uint64(foot[16:])
	indexLen := binary.LittleEndian.Uint64(foot[24:])

	fb, err := db.store.GetRange(key, int64(filterOff), int64(filterLen))
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: filter: %w", meta.Name, err)
	}
	filter, err := decodeKeyBloom(fb)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", meta.Name, err)
	}
	ib, err := db.store.GetRange(key, int64(indexOff), int64(indexLen))
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: index: %w", meta.Name, err)
	}
	index, err := decodeIndexBlock(ib)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open %s: %w", meta.Name, err)
	}
	return &tableReader{db: db, meta: meta, index: index, filter: filter}, nil
}

func decodeIndexBlock(b []byte) ([]blockHandle, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("kvstore: index block too short")
	}
	n := int(binary.LittleEndian.Uint32(b))
	p := 4
	out := make([]blockHandle, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < p+4 {
			return nil, fmt.Errorf("kvstore: truncated index block")
		}
		klen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if len(b) < p+klen+16 {
			return nil, fmt.Errorf("kvstore: truncated index entry")
		}
		h := blockHandle{firstKey: append([]byte{}, b[p:p+klen]...)}
		p += klen
		h.off = binary.LittleEndian.Uint64(b[p:])
		h.n = binary.LittleEndian.Uint64(b[p+8:])
		p += 16
		out = append(out, h)
	}
	return out, nil
}

// decodeBlockEntries parses all entries of one data block.
func decodeBlockEntries(b []byte) ([]entry, error) {
	var out []entry
	p := 0
	for p < len(b) {
		if len(b) < p+4 {
			return nil, fmt.Errorf("kvstore: truncated block entry")
		}
		klen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if len(b) < p+klen+13 {
			return nil, fmt.Errorf("kvstore: truncated block entry")
		}
		e := entry{key: append([]byte{}, b[p:p+klen]...)}
		p += klen
		e.seq = binary.LittleEndian.Uint64(b[p:])
		e.kind = entryKind(b[p+8])
		vlen := int(binary.LittleEndian.Uint32(b[p+9:]))
		p += 13
		if len(b) < p+vlen {
			return nil, fmt.Errorf("kvstore: truncated block value")
		}
		e.value = append([]byte{}, b[p:p+vlen]...)
		p += vlen
		out = append(out, e)
	}
	return out, nil
}

// blockFor returns the index of the first data block that may contain
// key's newest version, or -1 if the key sorts before every block.
// Entries are laid out key ASC, seq DESC, so a key with many versions can
// spill across block boundaries: every later block of the run starts with
// that same key but holds only its OLDER versions. The newest version
// therefore lives in the earliest covering block, and callers must keep
// scanning forward while the next block's firstKey still equals the key
// (searchFrom does this) — resolving within a single later block returns
// a stale version.
func (t *tableReader) blockFor(key []byte) int {
	// First block whose firstKey >= key.
	i := sort.Search(len(t.index), func(i int) bool {
		return bytes.Compare(t.index[i].firstKey, key) >= 0
	})
	if i > 0 {
		// Even when block i starts exactly at key, the run may begin at
		// the tail of block i-1, which then holds the newest version.
		return i - 1
	}
	if len(t.index) > 0 && bytes.Equal(t.index[0].firstKey, key) {
		return 0
	}
	return -1
}

// searchFrom resolves key given the decoded entries of its first
// candidate block bi (from blockFor), advancing into following blocks as
// long as they still start at key. The first match in file order is the
// newest version.
func (t *tableReader) searchFrom(bi int, entries []entry, key []byte) (entry, bool, error) {
	for {
		for i := range entries {
			if bytes.Equal(entries[i].key, key) {
				return entries[i], true, nil
			}
		}
		bi++
		if bi >= len(t.index) || !bytes.Equal(t.index[bi].firstKey, key) {
			return entry{}, false, nil
		}
		var err error
		if entries, err = t.blockEntries(bi); err != nil {
			return entry{}, false, err
		}
	}
}

// get looks up the newest entry for key in this table, consulting the
// DB-wide block cache before reading blocks from OSS.
func (t *tableReader) get(key []byte) (entry, bool, error) {
	if !t.filter.mayContain(key) {
		return entry{}, false, nil
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return entry{}, false, nil
	}
	entries, err := t.blockEntries(bi)
	if err != nil {
		return entry{}, false, err
	}
	return t.searchFrom(bi, entries, key)
}

// blockEntries returns the decoded entries of data block bi, consulting
// the DB-wide block cache first. Used by the batched read path, which
// groups keys per block so each block is fetched at most once per probe.
func (t *tableReader) blockEntries(bi int) ([]entry, error) {
	h := t.index[bi]
	ck := blockKey{table: t.meta.Name, off: h.off}
	t.db.stats.TableReads++
	if entries, cached := t.db.blocks.get(ck); cached {
		t.db.stats.BlockCacheHits++
		return entries, nil
	}
	blk, err := t.db.store.GetRange(t.db.tableKey(t.meta.Name), int64(h.off), int64(h.n))
	if err != nil {
		return nil, fmt.Errorf("kvstore: read block of %s: %w", t.meta.Name, err)
	}
	entries, err := decodeBlockEntries(blk)
	if err != nil {
		return nil, err
	}
	t.db.blocks.put(ck, entries, int64(h.n))
	return entries, nil
}

// allEntries streams every entry of the table in order (used by compaction
// and range iteration). It reads the whole data region in one request.
func (t *tableReader) allEntries() ([]entry, error) {
	if len(t.index) == 0 {
		return nil, nil
	}
	last := t.index[len(t.index)-1]
	dataLen := int64(last.off + last.n)
	b, err := t.db.store.GetRange(t.db.tableKey(t.meta.Name), 0, dataLen)
	if err != nil {
		return nil, fmt.Errorf("kvstore: read %s: %w", t.meta.Name, err)
	}
	return decodeBlockEntries(b)
}
