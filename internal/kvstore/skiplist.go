package kvstore

import (
	"bytes"
	"math/rand"
)

// skiplist is the memtable data structure: a classic probabilistic skip
// list over internal entries ordered by (user key ASC, seq DESC) so the
// newest version of a key is encountered first during iteration.
//
// It is deliberately single-writer: the DB serialises writes with its own
// mutex, matching the single-writer design of the LSM write path.
const (
	maxHeight = 16
	branching = 4
)

type skipNode struct {
	entry entry
	next  [maxHeight]*skipNode
}

type skiplist struct {
	head   *skipNode
	height int
	rnd    *rand.Rand
	count  int
	bytes  int64
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:   &skipNode{},
		height: 1,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// internalLess orders entries by user key ascending, then seq descending
// (newer first), so a Get scan finds the latest version immediately.
func internalLess(a, b *entry) bool {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.seq > b.seq
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rnd.Intn(branching) == 0 {
		h++
	}
	return h
}

// insert adds an entry. Entries are unique by (key, seq); the DB always
// assigns fresh sequence numbers, so duplicates cannot occur.
func (s *skiplist) insert(e entry) {
	var prev [maxHeight]*skipNode
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && internalLess(&x.next[level].entry, &e) {
			x = x.next[level]
		}
		prev[level] = x
	}
	h := s.randomHeight()
	if h > s.height {
		for level := s.height; level < h; level++ {
			prev[level] = s.head
		}
		s.height = h
	}
	n := &skipNode{entry: e}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	s.count++
	s.bytes += int64(len(e.key) + len(e.value) + 16)
}

// seekGE returns the first node with entry >= target in internal order.
func (s *skiplist) seekGE(target *entry) *skipNode {
	x := s.head
	for level := s.height - 1; level >= 0; level-- {
		for x.next[level] != nil && internalLess(&x.next[level].entry, target) {
			x = x.next[level]
		}
	}
	return x.next[0]
}

// get returns the newest entry for key, if any.
func (s *skiplist) get(key []byte) (entry, bool) {
	n := s.seekGE(&entry{key: key, seq: ^uint64(0)})
	if n != nil && bytes.Equal(n.entry.key, key) {
		return n.entry, true
	}
	return entry{}, false
}

// first returns the first node in order, or nil.
func (s *skiplist) first() *skipNode { return s.head.next[0] }

// memIter iterates a skiplist in internal order.
type memIter struct {
	node *skipNode
	list *skiplist
}

func (s *skiplist) iter() *memIter { return &memIter{node: s.first(), list: s} }

func (it *memIter) valid() bool { return it.node != nil }

func (it *memIter) cur() *entry { return &it.node.entry }

func (it *memIter) next() { it.node = it.node.next[0] }

// seekGE positions the iterator at the first entry with user key >= key.
func (it *memIter) seekGE(key []byte) {
	it.node = it.list.seekGE(&entry{key: key, seq: ^uint64(0)})
}
