package kvstore

import (
	"bytes"
	"errors"
	"testing"
)

// fuzzSeedReplRecord builds a small valid record for the seed corpus.
func fuzzSeedReplRecord() []byte {
	var b Batch
	b.Put([]byte("fp-0123456789abcdef"), []byte("C0000000000000012"))
	b.Delete([]byte("fp-fedcba9876543210"))
	return AppendReplRecord(nil, 3, 17, &b)
}

// FuzzReplRecord drives the replication log decoder with arbitrary bytes.
// Invariants: it never panics, every rejection wraps ErrBadReplRecord, and
// the encoding is canonical — any accepted input re-encodes byte-identical
// (so a torn tail, flipped bit, or trailing garbage can never silently
// alias another record).
func FuzzReplRecord(f *testing.F) {
	valid := fuzzSeedReplRecord()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-1])                     // torn tail
	f.Add(valid[:24])                               // header-only truncation
	f.Add(append(valid[:len(valid):len(valid)], 0)) // trailing garbage
	flipped := append([]byte{}, valid...)
	flipped[6] ^= 0x40 // corrupt the term without touching the CRC field
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		term, index, b, err := DecodeReplRecord(data)
		if err != nil {
			if !errors.Is(err, ErrBadReplRecord) {
				t.Fatalf("rejection does not wrap ErrBadReplRecord: %v", err)
			}
			if b != nil {
				t.Fatal("decoder returned a batch alongside an error")
			}
			return
		}
		again := AppendReplRecord(nil, term, index, b)
		if !bytes.Equal(again, data) {
			t.Fatalf("accepted record is not canonical:\n in  %x\n out %x", data, again)
		}
	})
}
