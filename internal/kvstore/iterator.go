package kvstore

import (
	"bytes"
	"container/heap"
	"fmt"
)

// Iterator streams live key-value pairs in ascending key order without
// materialising the whole keyspace (unlike Scan, which is a convenience
// for small offline jobs). It merges the memtable and every table with a
// k-way heap, resolving shadowed versions and tombstones on the fly.
//
// The iterator holds a consistent view of the tables captured at creation
// time; concurrent writes to the memtable after NewIterator are not
// reflected. It must not outlive a Compact call (tables may be deleted).
type Iterator struct {
	h      iterHeap
	curKey []byte
	curVal []byte
	err    error
	valid  bool
	end    []byte
}

// source is one sorted input to the merge.
type source struct {
	entries []entry // table sources are decoded eagerly per table
	pos     int
	mem     *memIter // non-nil for the memtable source
	// age breaks ties between sources holding equal (key, seq) — lower is
	// newer. Seq already orders versions, so age is a final guard only.
	age int
}

func (s *source) current() (*entry, bool) {
	if s.mem != nil {
		if !s.mem.valid() {
			return nil, false
		}
		return s.mem.cur(), true
	}
	if s.pos >= len(s.entries) {
		return nil, false
	}
	return &s.entries[s.pos], true
}

func (s *source) advance() {
	if s.mem != nil {
		s.mem.next()
		return
	}
	s.pos++
}

type iterHeap []*source

func (h iterHeap) Len() int { return len(h) }
func (h iterHeap) Less(i, j int) bool {
	a, _ := h[i].current()
	b, _ := h[j].current()
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c < 0
	}
	if a.seq != b.seq {
		return a.seq > b.seq // newer first
	}
	return h[i].age < h[j].age
}
func (h iterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *iterHeap) Push(x any)   { *h = append(*h, x.(*source)) }
func (h *iterHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// NewIterator returns an iterator over live keys in [start, end) (nil
// bounds are open). Call Next to position on the first pair.
func (db *DB) NewIterator(start, end []byte) (*Iterator, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	it := &Iterator{end: append([]byte(nil), end...)}
	if end == nil {
		it.end = nil
	}

	mi := db.mem.iter()
	if start != nil {
		mi.seekGE(start)
	}
	age := 0
	if _, ok := mi.cur2(); ok {
		it.h = append(it.h, &source{mem: mi, age: age})
	}
	age++

	// Tables, newest first so the age tie-break is correct.
	tables := append([]tableMeta(nil), db.man.Tables...)
	for _, meta := range tables {
		if start != nil && bytes.Compare(meta.Largest, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(meta.Smallest, end) >= 0 {
			continue
		}
		r, err := db.readerLocked(meta)
		if err != nil {
			return nil, err
		}
		es, err := r.allEntries()
		if err != nil {
			return nil, err
		}
		s := &source{entries: es, age: age}
		age++
		if start != nil {
			for s.pos < len(s.entries) && bytes.Compare(s.entries[s.pos].key, start) < 0 {
				s.pos++
			}
		}
		if _, ok := s.current(); ok {
			it.h = append(it.h, s)
		}
	}
	heap.Init(&it.h)
	return it, nil
}

// cur2 is a helper for memIter presence checks.
func (it *memIter) cur2() (*entry, bool) {
	if !it.valid() {
		return nil, false
	}
	return it.cur(), true
}

// Next advances to the next live key. It returns false at the end of the
// range or on error (check Err).
func (it *Iterator) Next() bool {
	for len(it.h) > 0 {
		top := it.h[0]
		e, ok := top.current()
		if !ok {
			heap.Pop(&it.h)
			continue
		}
		// Capture and advance past every version of this key.
		key := append([]byte(nil), e.key...)
		newest := *e
		for len(it.h) > 0 {
			top := it.h[0]
			cur, ok := top.current()
			if !ok {
				heap.Pop(&it.h)
				continue
			}
			if !bytes.Equal(cur.key, key) {
				break
			}
			top.advance()
			if _, ok := top.current(); ok {
				heap.Fix(&it.h, 0)
			} else {
				heap.Pop(&it.h)
			}
		}
		if it.end != nil && bytes.Compare(key, it.end) >= 0 {
			it.h = it.h[:0]
			it.valid = false
			return false
		}
		if newest.kind == kindDelete {
			continue // tombstoned key
		}
		it.curKey = key
		it.curVal = append([]byte(nil), newest.value...)
		it.valid = true
		return true
	}
	it.valid = false
	return false
}

// Key returns the current key; valid only after Next returned true.
func (it *Iterator) Key() []byte { return it.curKey }

// Value returns the current value; valid only after Next returned true.
func (it *Iterator) Value() []byte { return it.curVal }

// Err reports a deferred iteration error.
func (it *Iterator) Err() error { return it.err }

// Valid reports whether the iterator is positioned on a pair.
func (it *Iterator) Valid() bool { return it.valid }

// String aids debugging.
func (it *Iterator) String() string {
	if !it.valid {
		return "iterator{invalid}"
	}
	return fmt.Sprintf("iterator{%q}", it.curKey)
}
