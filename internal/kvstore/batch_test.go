package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"slimstore/internal/oss"
)

func TestBatchEquivalentToSingles(t *testing.T) {
	single, _ := Open(oss.NewMem(), smallOpts())
	batched, _ := Open(oss.NewMem(), smallOpts())

	rng := rand.New(rand.NewSource(7))
	var b Batch
	for i := 0; i < 400; i++ {
		k := []byte(fmt.Sprintf("key%03d", rng.Intn(120)))
		if rng.Intn(5) == 0 {
			if err := single.Delete(k); err != nil {
				t.Fatal(err)
			}
			b.Delete(k)
		} else {
			v := []byte(fmt.Sprintf("val%d", i))
			if err := single.Put(k, v); err != nil {
				t.Fatal(err)
			}
			b.Put(k, v)
		}
		// Apply in uneven chunks so batches straddle flush boundaries.
		if b.Len() >= 37 {
			if err := batched.Apply(&b); err != nil {
				t.Fatal(err)
			}
			b.Reset()
		}
	}
	if err := batched.Apply(&b); err != nil {
		t.Fatal(err)
	}
	for _, db := range []*DB{single, batched} {
		if err := db.Compact(); err != nil {
			t.Fatal(err)
		}
	}

	want := map[string]string{}
	single.Scan(nil, nil, func(k, v []byte) bool { want[string(k)] = string(v); return true })
	got := map[string]string{}
	batched.Scan(nil, nil, func(k, v []byte) bool { got[string(k)] = string(v); return true })
	if len(got) != len(want) {
		t.Fatalf("batched holds %d keys, singles %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %q: batched %q, singles %q", k, got[k], v)
		}
	}

	ss, bs := single.Stats(), batched.Stats()
	if ss.Puts != bs.Puts || ss.Deletes != bs.Deletes {
		t.Fatalf("op counts diverge: singles %d/%d, batched %d/%d", ss.Puts, ss.Deletes, bs.Puts, bs.Deletes)
	}
}

func TestBatchInternalOrdering(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	var b Batch
	b.Put([]byte("k"), []byte("first"))
	b.Delete([]byte("k"))
	b.Put([]byte("k"), []byte("last"))
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("k"))
	if err != nil || !ok || string(v) != "last" {
		t.Fatalf("Get = %q, %v, %v; want last write of the batch", v, ok, err)
	}
	// The ordering must survive persistence too.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ = db.Get([]byte("k"))
	if !ok || string(v) != "last" {
		t.Fatalf("after compact Get = %q, %v", v, ok)
	}
}

func TestBatchRecoveryFromWAL(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	var b Batch
	for i := 0; i < 50; i++ {
		b.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash: reopen without Close or Flush — recovery replays the batch
	// record from the WAL.
	db2, err := Open(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		v, ok, err := db2.Get([]byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered Get(k%02d) = %q, %v, %v", i, v, ok, err)
		}
	}
	// Post-recovery sequence numbers must exceed the batch's.
	db2.Put([]byte("k00"), []byte("newest"))
	if v, _, _ := db2.Get([]byte("k00")); string(v) != "newest" {
		t.Fatalf("post-recovery overwrite lost: %q", v)
	}
}

// TestTornBatchIsAllOrNothing is the crash-recovery contract of Apply: a
// batch lives in one WAL record under one CRC, so a segment torn anywhere
// inside the batch replays none of it, while records before the tear
// survive.
func TestTornBatchIsAllOrNothing(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	// A durable single write first, then the batch, in one segment.
	if err := db.Put([]byte("before"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	var b Batch
	for i := 0; i < 20; i++ {
		b.Put([]byte(fmt.Sprintf("batch%02d", i)), bytes.Repeat([]byte{byte(i)}, 32))
	}
	if err := db.Apply(&b); err != nil {
		t.Fatal(err)
	}
	if err := db.Sync(); err != nil {
		t.Fatal(err)
	}
	keys, _ := mem.List("kv/wal/")
	if len(keys) != 1 {
		t.Fatalf("wal segments = %v", keys)
	}
	seg, _ := mem.Get(keys[0])

	// Tear the segment at every point inside the batch record: recovery
	// must always keep "before" and never surface a partial batch.
	recLen := len(walEncodeSingle(t))
	for cut := recLen + 1; cut < len(seg); cut += 97 {
		mem.Put(keys[0], seg[:cut])
		re, err := Open(mem, smallOpts())
		if err != nil {
			t.Fatalf("cut at %d: recovery failed: %v", cut, err)
		}
		if _, ok, _ := re.Get([]byte("before")); !ok {
			t.Fatalf("cut at %d: record before the torn batch lost", cut)
		}
		n := 0
		for i := 0; i < 20; i++ {
			if _, ok, _ := re.Get([]byte(fmt.Sprintf("batch%02d", i))); ok {
				n++
			}
		}
		if n != 0 {
			t.Fatalf("cut at %d: torn batch partially replayed (%d of 20 keys)", cut, n)
		}
	}

	// The intact segment still replays everything.
	mem.Put(keys[0], seg)
	re, err := Open(mem, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, ok, _ := re.Get([]byte(fmt.Sprintf("batch%02d", i))); !ok {
			t.Fatalf("intact batch key batch%02d missing", i)
		}
	}
}

// walEncodeSingle computes the encoded length of the "before" record used
// by the torn-batch test, so tears start strictly inside the batch record.
func walEncodeSingle(t *testing.T) []byte {
	t.Helper()
	e := entry{key: []byte("before"), value: []byte("ok"), kind: kindPut, seq: 1}
	return appendWALRecord(nil, &e)
}

// A torn tail is only forgiven on the final segment; truncation of an
// earlier segment is corruption and must fail recovery.
func TestTruncatedNonFinalSegmentRejected(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	db.Put([]byte("a"), []byte("1"))
	db.Sync()
	db.Put([]byte("b"), []byte("2"))
	db.Sync()
	keys, _ := mem.List("kv/wal/")
	if len(keys) != 2 {
		t.Fatalf("wal segments = %v", keys)
	}
	seg, _ := mem.Get(keys[0])
	mem.Put(keys[0], seg[:len(seg)-3])
	if _, err := Open(mem, smallOpts()); err == nil {
		t.Fatal("truncated non-final WAL segment accepted")
	}
}

// A complete batch record with flipped bytes is corruption, not a torn
// write: the single CRC must reject it.
func TestBatchCRCCorruptionDetected(t *testing.T) {
	mem := oss.NewMem()
	db, _ := Open(mem, smallOpts())
	var b Batch
	b.Put([]byte("x"), []byte("y"))
	b.Put([]byte("p"), []byte("q"))
	db.Apply(&b)
	db.Sync()
	keys, _ := mem.List("kv/wal/")
	seg, _ := mem.Get(keys[0])
	seg[len(seg)-1] ^= 0xFF
	mem.Put(keys[0], seg)
	if _, err := Open(mem, smallOpts()); err == nil {
		t.Fatal("corrupted batch record accepted")
	}
}

// TestReplRecordTornDecode extends the torn-batch contract to the
// replication log: a record torn at ANY byte, bit-flipped anywhere, or
// followed by trailing garbage must be rejected whole with
// ErrBadReplRecord — a follower can never apply a partial batch — while
// the intact record round-trips exactly.
func TestReplRecordTornDecode(t *testing.T) {
	var b Batch
	for i := 0; i < 8; i++ {
		b.Put([]byte(fmt.Sprintf("fp%04d", i)), bytes.Repeat([]byte{byte(i)}, 24))
	}
	b.Delete([]byte("fp0003"))
	rec := AppendReplRecord(nil, 7, 42, &b)

	term, index, got, err := DecodeReplRecord(rec)
	if err != nil {
		t.Fatalf("valid record rejected: %v", err)
	}
	if term != 7 || index != 42 || got.Len() != b.Len() {
		t.Fatalf("round trip = term %d index %d len %d", term, index, got.Len())
	}
	if !bytes.Equal(AppendReplRecord(nil, term, index, got), rec) {
		t.Fatal("decoded record does not re-encode identically")
	}

	// Every truncation point, including the empty prefix.
	for cut := 0; cut < len(rec); cut++ {
		if _, _, tb, err := DecodeReplRecord(rec[:cut]); !errors.Is(err, ErrBadReplRecord) {
			t.Fatalf("cut at %d: err = %v, want ErrBadReplRecord", cut, err)
		} else if tb != nil {
			t.Fatalf("cut at %d: partial batch surfaced", cut)
		}
	}
	// Every single-bit flip: the CRC (or a structural check) must catch it.
	for pos := 0; pos < len(rec); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte{}, rec...)
			mut[pos] ^= 1 << bit
			if _, _, _, err := DecodeReplRecord(mut); err == nil {
				t.Fatalf("flip at byte %d bit %d accepted", pos, bit)
			}
		}
	}
	// Trailing bytes after a complete record are garbage, not slack.
	for _, extra := range [][]byte{{0}, {0xFE}, bytes.Repeat([]byte{0xAA}, 9)} {
		mut := append(append([]byte{}, rec...), extra...)
		if _, _, _, err := DecodeReplRecord(mut); !errors.Is(err, ErrBadReplRecord) {
			t.Fatalf("trailing %d bytes: err = %v, want ErrBadReplRecord", len(extra), err)
		}
	}
}

func TestGetMultiAcrossLayers(t *testing.T) {
	db, _ := Open(oss.NewMem(), smallOpts())
	want := map[string]string{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("k%04d", i)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		want[k] = v
		if i%41 == 0 {
			db.Flush() // several L0 tables plus compactions into L1
		}
	}
	// Overwrites and deletes spread across memtable and tables.
	for i := 0; i < 300; i += 7 {
		k := fmt.Sprintf("k%04d", i)
		db.Put([]byte(k), []byte("new"))
		want[k] = "new"
	}
	for i := 3; i < 300; i += 13 {
		k := fmt.Sprintf("k%04d", i)
		db.Delete([]byte(k))
		delete(want, k)
	}

	var keys [][]byte
	for i := 0; i < 350; i++ { // includes 50 absent keys
		keys = append(keys, []byte(fmt.Sprintf("k%04d", i)))
	}
	values, found, err := db.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		wv, ok := want[string(k)]
		if ok != found[i] {
			t.Fatalf("key %s: found=%v, want %v", k, found[i], ok)
		}
		if ok && string(values[i]) != wv {
			t.Fatalf("key %s = %q, want %q", k, values[i], wv)
		}
	}
}

// Property: GetMulti agrees with a loop of Gets on random workloads.
func TestQuickGetMultiMatchesGet(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Del bool
	}, probe []byte) bool {
		db, err := Open(oss.NewMem(), smallOpts())
		if err != nil {
			return false
		}
		for i, op := range ops {
			k := []byte(fmt.Sprintf("key%d", op.Key%24))
			if op.Del {
				db.Delete(k)
			} else {
				db.Put(k, []byte(fmt.Sprintf("v%d", i)))
			}
			if i%11 == 0 {
				db.Flush()
			}
		}
		keys := make([][]byte, len(probe))
		for i, p := range probe {
			keys[i] = []byte(fmt.Sprintf("key%d", p%32)) // some absent
		}
		values, found, err := db.GetMulti(keys)
		if err != nil {
			return false
		}
		for i, k := range keys {
			v, ok, err := db.Get(k)
			if err != nil || ok != found[i] || !bytes.Equal(v, values[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkKVBatchPut measures group-committed writes (one WAL record,
// one lock acquisition per 64 entries) against BenchmarkKVPut's singles.
func BenchmarkKVBatchPut(b *testing.B) {
	db, _ := Open(oss.NewMem(), Options{})
	val := make([]byte, 64)
	var batch Batch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch.Put([]byte(fmt.Sprintf("key%08d", i)), val)
		if batch.Len() == 64 {
			if err := db.Apply(&batch); err != nil {
				b.Fatal(err)
			}
			batch.Reset()
		}
	}
	if batch.Len() > 0 {
		if err := db.Apply(&batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKVGetMulti measures sorted 64-key batch lookups against
// BenchmarkKVGet's point reads over the same keyspace.
func BenchmarkKVGetMulti(b *testing.B) {
	db, _ := Open(oss.NewMem(), Options{})
	val := make([]byte, 64)
	for i := 0; i < 10000; i++ {
		db.Put([]byte(fmt.Sprintf("key%08d", i)), val)
	}
	db.Flush()
	keys := make([][]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i += len(keys) {
		for j := range keys {
			keys[j] = []byte(fmt.Sprintf("key%08d", (i+j*157)%10000))
		}
		if _, _, err := db.GetMulti(keys); err != nil {
			b.Fatal(err)
		}
	}
}
