package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write-ahead log.
//
// OSS objects are immutable, so the WAL is a sequence of segment objects
// (kv/wal/<seq>), each holding a batch of records. Records buffer in memory
// and persist when the buffer reaches Options.WALFlushBytes, on Sync(), or
// before a memtable flush — the durability/cost trade-off of running a log
// on object storage. Each record carries a CRC32C so torn or corrupt
// segments are detected during recovery.
//
// Single-record wire format, little endian:
//
//	crc u32 | seq u64 | kind u8 | klen u32 | key | vlen u32 | value
//
// Batch record (kind byte = walBatchKind, from DB.Apply): one record for
// the whole batch under one CRC, so recovery replays it all-or-nothing:
//
//	crc u32 | baseSeq u64 | 0xFF u8 | count u32 |
//	  ( kind u8 | klen u32 | key | vlen u32 | value )*
//
// Sub-entry i carries sequence baseSeq+i. The CRC covers everything after
// the crc field in both formats.

// walBatchKind marks a batch record; it cannot collide with entryKind
// values, which are small iota constants.
const walBatchKind = 0xFF

// errTruncatedWAL marks a record that runs off the end of its segment — a
// torn write. Open tolerates it at the tail of the final segment (the
// decoded prefix is the durable part); anywhere else it is corruption.
// Note a complete record with a damaged length field can masquerade as a
// truncated one; that ambiguity is inherent to torn-write tolerance.
var errTruncatedWAL = errors.New("kvstore: truncated WAL record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendWALRecord(buf []byte, e *entry) []byte {
	body := make([]byte, 0, 17+len(e.key)+len(e.value))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], e.seq)
	body = append(body, tmp[:]...)
	body = append(body, byte(e.kind))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
	body = append(body, tmp[:4]...)
	body = append(body, e.key...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.value)))
	body = append(body, tmp[:4]...)
	body = append(body, e.value...)

	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(body, crcTable))
	buf = append(buf, tmp[:4]...)
	return append(buf, body...)
}

// appendWALBatchRecord encodes a whole batch as one record. Entry seq
// fields are implied (baseSeq+i), not serialized.
func appendWALBatchRecord(buf []byte, baseSeq uint64, entries []entry) []byte {
	size := 13
	for i := range entries {
		size += 9 + len(entries[i].key) + len(entries[i].value)
	}
	body := make([]byte, 0, size)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], baseSeq)
	body = append(body, tmp[:]...)
	body = append(body, walBatchKind)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(entries)))
	body = append(body, tmp[:4]...)
	for i := range entries {
		e := &entries[i]
		body = append(body, byte(e.kind))
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
		body = append(body, tmp[:4]...)
		body = append(body, e.key...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.value)))
		body = append(body, tmp[:4]...)
		body = append(body, e.value...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(body, crcTable))
	buf = append(buf, tmp[:4]...)
	return append(buf, body...)
}

// decodeWALSegment parses a WAL segment, returning its records in order.
// On a truncated record it returns the complete prefix decoded so far
// along with an error wrapping errTruncatedWAL, so the caller can decide
// whether the tear is tolerable. A batch record is appended only if it
// decodes completely and its CRC verifies — never partially.
func decodeWALSegment(b []byte) ([]entry, error) {
	var out []entry
	p := 0
	for p < len(b) {
		if len(b) < p+17 {
			return out, fmt.Errorf("%w: header at %d", errTruncatedWAL, p)
		}
		crc := binary.LittleEndian.Uint32(b[p:])
		start := p + 4
		seq := binary.LittleEndian.Uint64(b[start:])
		kind := b[start+8]
		n := int(binary.LittleEndian.Uint32(b[start+9:]))
		p = start + 13

		if kind == walBatchKind {
			batch := make([]entry, 0, n)
			for i := 0; i < n; i++ {
				if len(b) < p+5 {
					return out, fmt.Errorf("%w: batch entry header at %d", errTruncatedWAL, p)
				}
				ekind := entryKind(b[p])
				klen := int(binary.LittleEndian.Uint32(b[p+1:]))
				p += 5
				if len(b) < p+klen+4 {
					return out, fmt.Errorf("%w: batch key at %d", errTruncatedWAL, p)
				}
				key := append([]byte{}, b[p:p+klen]...)
				p += klen
				vlen := int(binary.LittleEndian.Uint32(b[p:]))
				p += 4
				if len(b) < p+vlen {
					return out, fmt.Errorf("%w: batch value at %d", errTruncatedWAL, p)
				}
				value := append([]byte{}, b[p:p+vlen]...)
				p += vlen
				batch = append(batch, entry{key: key, value: value, seq: seq + uint64(i), kind: ekind})
			}
			if crc32.Checksum(b[start:p], crcTable) != crc {
				return out, fmt.Errorf("kvstore: WAL CRC mismatch at %d", start)
			}
			out = append(out, batch...)
			continue
		}

		klen := n
		if len(b) < p+klen+4 {
			return out, fmt.Errorf("%w: key at %d", errTruncatedWAL, p)
		}
		key := append([]byte{}, b[p:p+klen]...)
		p += klen
		vlen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if len(b) < p+vlen {
			return out, fmt.Errorf("%w: value at %d", errTruncatedWAL, p)
		}
		value := append([]byte{}, b[p:p+vlen]...)
		p += vlen
		if crc32.Checksum(b[start:p], crcTable) != crc {
			return out, fmt.Errorf("kvstore: WAL CRC mismatch at %d", start)
		}
		out = append(out, entry{key: key, value: value, seq: seq, kind: entryKind(kind)})
	}
	return out, nil
}
