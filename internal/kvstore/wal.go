package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Write-ahead log.
//
// OSS objects are immutable, so the WAL is a sequence of segment objects
// (kv/wal/<seq>), each holding a batch of records. Records buffer in memory
// and persist when the buffer reaches Options.WALFlushBytes, on Sync(), or
// before a memtable flush — the durability/cost trade-off of running a log
// on object storage. Each record carries a CRC32C so torn or corrupt
// segments are detected during recovery.
//
// Single-record wire format, little endian:
//
//	crc u32 | seq u64 | kind u8 | klen u32 | key | vlen u32 | value
//
// Batch record (kind byte = walBatchKind, from DB.Apply): one record for
// the whole batch under one CRC, so recovery replays it all-or-nothing:
//
//	crc u32 | baseSeq u64 | 0xFF u8 | count u32 |
//	  ( kind u8 | klen u32 | key | vlen u32 | value )*
//
// Sub-entry i carries sequence baseSeq+i. The CRC covers everything after
// the crc field in both formats.

// walBatchKind marks a batch record; it cannot collide with entryKind
// values, which are small iota constants.
const walBatchKind = 0xFF

// errTruncatedWAL marks a record that runs off the end of its segment — a
// torn write. Open tolerates it at the tail of the final segment (the
// decoded prefix is the durable part); anywhere else it is corruption.
// Note a complete record with a damaged length field can masquerade as a
// truncated one; that ambiguity is inherent to torn-write tolerance.
var errTruncatedWAL = errors.New("kvstore: truncated WAL record")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendWALRecord(buf []byte, e *entry) []byte {
	body := make([]byte, 0, 17+len(e.key)+len(e.value))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], e.seq)
	body = append(body, tmp[:]...)
	body = append(body, byte(e.kind))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
	body = append(body, tmp[:4]...)
	body = append(body, e.key...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.value)))
	body = append(body, tmp[:4]...)
	body = append(body, e.value...)

	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(body, crcTable))
	buf = append(buf, tmp[:4]...)
	return append(buf, body...)
}

// appendWALBatchRecord encodes a whole batch as one record. Entry seq
// fields are implied (baseSeq+i), not serialized.
func appendWALBatchRecord(buf []byte, baseSeq uint64, entries []entry) []byte {
	size := 13
	for i := range entries {
		size += 9 + len(entries[i].key) + len(entries[i].value)
	}
	body := make([]byte, 0, size)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], baseSeq)
	body = append(body, tmp[:]...)
	body = append(body, walBatchKind)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(entries)))
	body = append(body, tmp[:4]...)
	for i := range entries {
		e := &entries[i]
		body = append(body, byte(e.kind))
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
		body = append(body, tmp[:4]...)
		body = append(body, e.key...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.value)))
		body = append(body, tmp[:4]...)
		body = append(body, e.value...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(body, crcTable))
	buf = append(buf, tmp[:4]...)
	return append(buf, body...)
}

// Replication record (internal/repl). The replicated global index stores
// each committed batch as one log object whose payload reuses the WAL
// batch-entry body, prefixed with the replication position that orders and
// fences it:
//
//	crc u32 | term u64 | index u64 | 0xFE u8 | count u32 |
//	  ( kind u8 | klen u32 | key | vlen u32 | value )*
//
// The CRC covers everything after the crc field, so a torn or corrupted
// log object decodes all-or-nothing, exactly like a WAL batch record.

// replRecordKind marks a replication log record. Distinct from
// walBatchKind so a repl record can never be mistaken for a WAL segment
// record and vice versa.
const replRecordKind = 0xFE

// ErrBadReplRecord reports a replication log record that failed
// validation (truncated, corrupt, or not a repl record at all).
var ErrBadReplRecord = errors.New("kvstore: bad replication record")

// AppendReplRecord encodes batch b as one replication log record stamped
// with (term, index) and appends it to buf.
func AppendReplRecord(buf []byte, term, index uint64, b *Batch) []byte {
	size := 21
	for i := range b.entries {
		size += 9 + len(b.entries[i].key) + len(b.entries[i].value)
	}
	body := make([]byte, 0, size)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], term)
	body = append(body, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], index)
	body = append(body, tmp[:]...)
	body = append(body, replRecordKind)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(b.entries)))
	body = append(body, tmp[:4]...)
	for i := range b.entries {
		e := &b.entries[i]
		body = append(body, byte(e.kind))
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
		body = append(body, tmp[:4]...)
		body = append(body, e.key...)
		binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.value)))
		body = append(body, tmp[:4]...)
		body = append(body, e.value...)
	}
	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(body, crcTable))
	buf = append(buf, tmp[:4]...)
	return append(buf, body...)
}

// DecodeReplRecord parses exactly one replication log record. It is
// all-or-nothing: any truncation, trailing garbage, unknown entry kind, or
// CRC mismatch returns an error wrapping ErrBadReplRecord and no batch.
// The decoder never trusts length fields beyond the data it holds, so
// hostile inputs cannot force large allocations.
func DecodeReplRecord(data []byte) (term, index uint64, b *Batch, err error) {
	fail := func(what string) (uint64, uint64, *Batch, error) {
		return 0, 0, nil, fmt.Errorf("%w: %s", ErrBadReplRecord, what)
	}
	if len(data) < 25 {
		return fail("short header")
	}
	crc := binary.LittleEndian.Uint32(data)
	body := data[4:]
	term = binary.LittleEndian.Uint64(body)
	index = binary.LittleEndian.Uint64(body[8:])
	if body[16] != replRecordKind {
		return fail("not a replication record")
	}
	count := int(binary.LittleEndian.Uint32(body[17:]))
	p := 21
	maxEntries := (len(body) - p) / 9 // every entry takes ≥9 bytes
	if count < 0 || count > maxEntries {
		return fail("entry count exceeds payload")
	}
	b = &Batch{entries: make([]entry, 0, count)}
	for i := 0; i < count; i++ {
		if len(body) < p+5 {
			return fail("truncated entry header")
		}
		kind := entryKind(body[p])
		if kind != kindPut && kind != kindDelete {
			return fail("unknown entry kind")
		}
		klen := int(binary.LittleEndian.Uint32(body[p+1:]))
		p += 5
		if klen < 0 || len(body) < p+klen+4 {
			return fail("truncated key")
		}
		key := append([]byte{}, body[p:p+klen]...)
		p += klen
		vlen := int(binary.LittleEndian.Uint32(body[p:]))
		p += 4
		if vlen < 0 || len(body) < p+vlen {
			return fail("truncated value")
		}
		value := append([]byte{}, body[p:p+vlen]...)
		p += vlen
		b.entries = append(b.entries, entry{key: key, value: value, kind: kind})
	}
	if p != len(body) {
		return fail("trailing bytes")
	}
	if crc32.Checksum(body, crcTable) != crc {
		return fail("crc mismatch")
	}
	return term, index, b, nil
}

// decodeWALSegment parses a WAL segment, returning its records in order.
// On a truncated record it returns the complete prefix decoded so far
// along with an error wrapping errTruncatedWAL, so the caller can decide
// whether the tear is tolerable. A batch record is appended only if it
// decodes completely and its CRC verifies — never partially.
func decodeWALSegment(b []byte) ([]entry, error) {
	var out []entry
	p := 0
	for p < len(b) {
		if len(b) < p+17 {
			return out, fmt.Errorf("%w: header at %d", errTruncatedWAL, p)
		}
		crc := binary.LittleEndian.Uint32(b[p:])
		start := p + 4
		seq := binary.LittleEndian.Uint64(b[start:])
		kind := b[start+8]
		n := int(binary.LittleEndian.Uint32(b[start+9:]))
		p = start + 13

		if kind == walBatchKind {
			batch := make([]entry, 0, n)
			for i := 0; i < n; i++ {
				if len(b) < p+5 {
					return out, fmt.Errorf("%w: batch entry header at %d", errTruncatedWAL, p)
				}
				ekind := entryKind(b[p])
				klen := int(binary.LittleEndian.Uint32(b[p+1:]))
				p += 5
				if len(b) < p+klen+4 {
					return out, fmt.Errorf("%w: batch key at %d", errTruncatedWAL, p)
				}
				key := append([]byte{}, b[p:p+klen]...)
				p += klen
				vlen := int(binary.LittleEndian.Uint32(b[p:]))
				p += 4
				if len(b) < p+vlen {
					return out, fmt.Errorf("%w: batch value at %d", errTruncatedWAL, p)
				}
				value := append([]byte{}, b[p:p+vlen]...)
				p += vlen
				batch = append(batch, entry{key: key, value: value, seq: seq + uint64(i), kind: ekind})
			}
			if crc32.Checksum(b[start:p], crcTable) != crc {
				return out, fmt.Errorf("kvstore: WAL CRC mismatch at %d", start)
			}
			out = append(out, batch...)
			continue
		}

		klen := n
		if len(b) < p+klen+4 {
			return out, fmt.Errorf("%w: key at %d", errTruncatedWAL, p)
		}
		key := append([]byte{}, b[p:p+klen]...)
		p += klen
		vlen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if len(b) < p+vlen {
			return out, fmt.Errorf("%w: value at %d", errTruncatedWAL, p)
		}
		value := append([]byte{}, b[p:p+vlen]...)
		p += vlen
		if crc32.Checksum(b[start:p], crcTable) != crc {
			return out, fmt.Errorf("kvstore: WAL CRC mismatch at %d", start)
		}
		out = append(out, entry{key: key, value: value, seq: seq, kind: entryKind(kind)})
	}
	return out, nil
}
