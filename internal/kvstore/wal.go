package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Write-ahead log.
//
// OSS objects are immutable, so the WAL is a sequence of segment objects
// (kv/wal/<seq>), each holding a batch of records. Records buffer in memory
// and persist when the buffer reaches Options.WALFlushBytes, on Sync(), or
// before a memtable flush — the durability/cost trade-off of running a log
// on object storage. Each record carries a CRC32C so torn or corrupt
// segments are detected during recovery.
//
// Record wire format, little endian:
//
//	crc u32 | seq u64 | kind u8 | klen u32 | key | vlen u32 | value
//
// The CRC covers everything after the crc field.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendWALRecord(buf []byte, e *entry) []byte {
	body := make([]byte, 0, 17+len(e.key)+len(e.value))
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], e.seq)
	body = append(body, tmp[:]...)
	body = append(body, byte(e.kind))
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.key)))
	body = append(body, tmp[:4]...)
	body = append(body, e.key...)
	binary.LittleEndian.PutUint32(tmp[:4], uint32(len(e.value)))
	body = append(body, tmp[:4]...)
	body = append(body, e.value...)

	binary.LittleEndian.PutUint32(tmp[:4], crc32.Checksum(body, crcTable))
	buf = append(buf, tmp[:4]...)
	return append(buf, body...)
}

// decodeWALSegment parses a WAL segment, returning its records in order.
func decodeWALSegment(b []byte) ([]entry, error) {
	var out []entry
	p := 0
	for p < len(b) {
		if len(b) < p+4+13 {
			return nil, fmt.Errorf("kvstore: truncated WAL record at %d", p)
		}
		crc := binary.LittleEndian.Uint32(b[p:])
		p += 4
		start := p
		seq := binary.LittleEndian.Uint64(b[p:])
		kind := entryKind(b[p+8])
		klen := int(binary.LittleEndian.Uint32(b[p+9:]))
		p += 13
		if len(b) < p+klen+4 {
			return nil, fmt.Errorf("kvstore: truncated WAL key at %d", p)
		}
		key := append([]byte{}, b[p:p+klen]...)
		p += klen
		vlen := int(binary.LittleEndian.Uint32(b[p:]))
		p += 4
		if len(b) < p+vlen {
			return nil, fmt.Errorf("kvstore: truncated WAL value at %d", p)
		}
		value := append([]byte{}, b[p:p+vlen]...)
		p += vlen
		if crc32.Checksum(b[start:p], crcTable) != crc {
			return nil, fmt.Errorf("kvstore: WAL CRC mismatch at %d", start)
		}
		out = append(out, entry{key: key, value: value, seq: seq, kind: kind})
	}
	return out, nil
}
