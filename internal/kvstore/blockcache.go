package kvstore

import "container/list"

// blockCache is an LRU over decoded data blocks, keyed by (table, block
// offset). RocksDB-lineage engines keep hot blocks in memory so repeated
// point lookups don't re-fetch from storage — on OSS that saves a 2 ms
// round trip per hit, which dominates G-node reverse-dedup filtering when
// duplicates cluster (the paper's "caching the meta of the old container"
// observation generalised to the index itself).
type blockCache struct {
	capBytes int64
	bytes    int64
	m        map[blockKey]*list.Element
	order    *list.List // front = most recent
}

type blockKey struct {
	table string
	off   uint64
}

type blockVal struct {
	key     blockKey
	entries []entry
	size    int64
}

func newBlockCache(capBytes int64) *blockCache {
	return &blockCache{capBytes: capBytes, m: make(map[blockKey]*list.Element), order: list.New()}
}

func (c *blockCache) get(k blockKey) ([]entry, bool) {
	if c == nil {
		return nil, false
	}
	e, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(e)
	return e.Value.(*blockVal).entries, true
}

func (c *blockCache) put(k blockKey, entries []entry, size int64) {
	if c == nil || size > c.capBytes {
		return
	}
	if e, ok := c.m[k]; ok {
		c.order.MoveToFront(e)
		return
	}
	c.m[k] = c.order.PushFront(&blockVal{key: k, entries: entries, size: size})
	c.bytes += size
	for c.bytes > c.capBytes && c.order.Len() > 0 {
		back := c.order.Back()
		v := back.Value.(*blockVal)
		c.order.Remove(back)
		delete(c.m, v.key)
		c.bytes -= v.size
	}
}

// drop discards every cached block of one table (after compaction deletes
// it).
func (c *blockCache) drop(table string) {
	if c == nil {
		return
	}
	for e := c.order.Front(); e != nil; {
		next := e.Next()
		v := e.Value.(*blockVal)
		if v.key.table == table {
			c.order.Remove(e)
			delete(c.m, v.key)
			c.bytes -= v.size
		}
		e = next
	}
}
