package kvstore

import (
	"bytes"
	"sort"
)

// Batch collects puts and deletes for atomic application via DB.Apply.
// A batch is group-committed: it becomes one WAL record under a single
// CRC, so crash recovery replays it all-or-nothing, and it takes the DB
// write lock once regardless of size — the write-amplification profile
// G-node's reverse-dedup commit depends on.
//
// A Batch is not safe for concurrent mutation; build it on one goroutine
// (or behind a lock) and hand it to Apply.
type Batch struct {
	entries []entry
}

// Put queues a key-value write. Key and value are copied.
func (b *Batch) Put(key, value []byte) {
	b.entries = append(b.entries, entry{
		key:   append([]byte{}, key...),
		value: append([]byte{}, value...),
		kind:  kindPut,
	})
}

// Delete queues a tombstone for key. The key is copied.
func (b *Batch) Delete(key []byte) {
	b.entries = append(b.entries, entry{key: append([]byte{}, key...), kind: kindDelete})
}

// Len reports the number of queued operations.
func (b *Batch) Len() int { return len(b.entries) }

// Reset empties the batch for reuse.
func (b *Batch) Reset() { b.entries = b.entries[:0] }

// Clone returns a deep copy of the batch. The replication layer fans one
// decoded log record out to every replica and must extend each copy with
// the replica's own position marker without aliasing key/value bytes.
func (b *Batch) Clone() *Batch {
	c := &Batch{entries: make([]entry, len(b.entries))}
	for i := range b.entries {
		e := &b.entries[i]
		c.entries[i] = entry{
			key:   append([]byte{}, e.key...),
			value: append([]byte{}, e.value...),
			kind:  e.kind,
		}
	}
	return c
}

// Op is one queued batch operation, exposed for callers (replication,
// tests) that need to inspect a batch without coupling to the internal
// entry representation.
type Op struct {
	Key, Value []byte
	Delete     bool
}

// Ops returns the queued operations in application order. The returned
// slices alias the batch's copies; treat them as read-only.
func (b *Batch) Ops() []Op {
	out := make([]Op, len(b.entries))
	for i := range b.entries {
		e := &b.entries[i]
		out[i] = Op{Key: e.key, Value: e.value, Delete: e.kind == kindDelete}
	}
	return out
}

// Apply commits the batch: one lock acquisition, one WAL record, one
// memtable insertion pass. Entries receive contiguous sequence numbers in
// batch order, so a batch that writes the same key twice resolves exactly
// like the equivalent loop of singles (last write wins). An empty or nil
// batch is a no-op.
func (db *DB) Apply(b *Batch) error {
	if b == nil || len(b.entries) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	base := db.seq + 1
	db.seq += uint64(len(b.entries))
	db.walBuf = appendWALBatchRecord(db.walBuf, base, b.entries)
	for i := range b.entries {
		e := b.entries[i]
		e.seq = base + uint64(i)
		db.mem.insert(e)
		if e.kind == kindPut {
			db.stats.Puts++
		} else {
			db.stats.Deletes++
		}
	}
	if len(db.walBuf) >= db.opts.WALFlushBytes {
		if err := db.flushWALLocked(); err != nil {
			return err
		}
	}
	if db.mem.bytes >= db.opts.MemtableBytes {
		if err := db.flushMemLocked(); err != nil {
			return err
		}
		return db.maybeCompactLocked()
	}
	return nil
}

// keyRef tracks one GetMulti key and its position in the caller's slice
// while it remains unresolved.
type keyRef struct {
	key []byte
	pos int
}

// GetMulti looks up many keys under one lock acquisition. It returns
// parallel slices: values[i]/found[i] answer keys[i], with found[i] false
// for missing or deleted keys. Keys are probed memtable-first, then L0
// newest-first, then the disjoint deeper levels; unresolved keys are
// sorted so neighbouring keys land in the same SSTable data block and
// each needed block is fetched exactly once per table, amortizing OSS
// reads that the equivalent loop of Gets would repeat. Per-key bloom
// probes are preserved, so filter effectiveness stats match the loop.
func (db *DB) GetMulti(keys [][]byte) (values [][]byte, found []bool, err error) {
	values = make([][]byte, len(keys))
	found = make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, nil, ErrClosed
	}
	db.stats.Gets += int64(len(keys))

	pending := make([]keyRef, 0, len(keys))
	for i, k := range keys {
		if e, ok := db.mem.get(k); ok {
			if e.kind != kindDelete {
				values[i] = append([]byte{}, e.value...)
				found[i] = true
			}
			continue // resolved, even by tombstone
		}
		pending = append(pending, keyRef{key: k, pos: i})
	}
	sort.Slice(pending, func(i, j int) bool { return bytes.Compare(pending[i].key, pending[j].key) < 0 })

	// L0 tables may overlap; probe newest-first and drop resolved keys
	// (including tombstones) so older tables cannot shadow newer versions.
	l0 := db.tablesAtLocked(0)
	sort.Slice(l0, func(i, j int) bool { return l0[i].MaxSeq > l0[j].MaxSeq })
	for _, meta := range l0 {
		if len(pending) == 0 {
			break
		}
		pending, err = db.tableGetMultiLocked(meta, pending, values, found)
		if err != nil {
			return nil, nil, err
		}
	}

	// Deeper levels hold disjoint tables: each key maps to at most one.
	for level := 1; level < db.opts.MaxLevels && len(pending) > 0; level++ {
		tables := db.tablesAtLocked(level)
		if len(tables) == 0 {
			continue
		}
		groups := make(map[int][]keyRef)
		var next []keyRef
		for _, kr := range pending {
			i := sort.Search(len(tables), func(i int) bool {
				return bytes.Compare(tables[i].Largest, kr.key) >= 0
			})
			if i < len(tables) && bytes.Compare(tables[i].Smallest, kr.key) <= 0 {
				groups[i] = append(groups[i], kr)
			} else {
				next = append(next, kr)
			}
		}
		for i := range tables {
			g := groups[i]
			if len(g) == 0 {
				continue
			}
			rest, err := db.tableGetMultiLocked(tables[i], g, values, found)
			if err != nil {
				return nil, nil, err
			}
			next = append(next, rest...)
		}
		pending = next
	}
	return values, found, nil
}

// tableGetMultiLocked probes one table for refs, filling values/found for
// the keys it resolves (tombstones resolve with found left false) and
// returning the refs this table cannot answer. Bloom probes stay per-key;
// block fetches are grouped so each data block is read at most once.
func (db *DB) tableGetMultiLocked(meta tableMeta, refs []keyRef, values [][]byte, found []bool) ([]keyRef, error) {
	r, err := db.readerLocked(meta)
	if err != nil {
		return nil, err
	}
	var miss []keyRef
	byBlock := make(map[int][]keyRef)
	var order []int
	for _, kr := range refs {
		if !r.filter.mayContain(kr.key) {
			db.stats.BloomNegative++
			miss = append(miss, kr)
			continue
		}
		bi := r.blockFor(kr.key)
		if bi < 0 {
			miss = append(miss, kr)
			continue
		}
		if _, ok := byBlock[bi]; !ok {
			order = append(order, bi)
		}
		byBlock[bi] = append(byBlock[bi], kr)
	}
	for _, bi := range order {
		entries, err := r.blockEntries(bi)
		if err != nil {
			return nil, err
		}
		for _, kr := range byBlock[bi] {
			// searchFrom walks past bi when the key's version run spans a
			// block boundary; follow-up blocks come from the block cache.
			e, ok, err := r.searchFrom(bi, entries, kr.key)
			if err != nil {
				return nil, err
			}
			if !ok {
				miss = append(miss, kr)
				continue
			}
			if e.kind != kindDelete {
				values[kr.pos] = e.value
				found[kr.pos] = true
			}
		}
	}
	return miss, nil
}
