// Package repl implements a minimal replicated batch log under the global
// fingerprint index (ROADMAP open item 2; the shared-nothing clustered
// dedup design of Khan et al. is the blueprint).
//
// One Group is a shard of the fingerprint index: 2f+1 kvstore replicas
// plus a shared, durable replication log of WriteBatch records on OSS.
// The leader appends each batch as one log object stamped with its
// (term, index) position — the log put is the commit/durability point,
// object storage being the paper's always-durable substrate — then fans
// the batch out to every reachable replica and acknowledges once a
// quorum has applied it. Followers apply strictly in log order; a
// lagging or rebooted follower catches up by replaying the log from its
// last applied position.
//
// Failover: when the leader is dead or partitioned, the next operation
// elects the most up-to-date reachable replica (ties break to the lowest
// node id) at term+1. The detection timeout plus election round trips
// are charged as VIRTUAL time (simclock discipline): real elections wait
// on heartbeats; the deterministic harness records what that wait would
// have cost instead of sleeping.
//
// Fencing: every append carries the leader's term. A quorum that has
// acknowledged a newer term rejects appends from a deposed leader
// (ErrFenced) before anything reaches the log, so a stale leader cannot
// commit. Handle captures the lease a client holds; see Handle.Apply.
//
// Each replica stores, inside every applied batch, a reserved state key
// carrying (term, index). The position marker therefore commits
// atomically with the batch itself — the kvstore's all-or-nothing batch
// recovery guarantees a rebooted replica's claimed position never drifts
// from its data, which is what makes log catch-up idempotent.
package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"slimstore/internal/kvstore"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

// ErrNoQuorum reports that fewer than f+1 replicas are reachable: the
// group cannot commit (or elect) and the operation must fail loudly
// rather than risk split-brain.
var ErrNoQuorum = errors.New("repl: no quorum of reachable replicas")

// ErrFenced reports an append from a deposed leader: a quorum has moved
// to a higher term, so the stale leader's batch is rejected.
var ErrFenced = errors.New("repl: leader fenced by higher term")

// PhaseFailover is the simclock CPU phase failover downtime is charged
// to.
const PhaseFailover = simclock.Phase("repl-failover")

// stateKey is the reserved per-replica key holding (term, applied). Its
// length differs from fingerprint.Size, so index-level scans (which
// filter on key length) never see it.
var stateKey = []byte("!repl")

// Options configure a replica group.
type Options struct {
	// Replicas is the group size 2f+1. Default 3. A size of 1 degrades
	// to an unreplicated store that still writes the log (useful in
	// tests; production single-node setups skip repl entirely).
	Replicas int
	// Prefix is the group's OSS namespace (e.g. "gidx/s0/"): the log
	// lives at <Prefix>log/, replica i at <Prefix>n<i>/.
	Prefix string
	// KV tunes each replica's LSM store. Prefix is derived per node.
	KV kvstore.Options
	// HeartbeatTimeout is the virtual failure-detection delay charged
	// once per failover. Default 150ms.
	HeartbeatTimeout time.Duration
	// ElectionRoundTrip is the virtual cost of one election message
	// round (request votes, announce); two rounds are charged per
	// failover. Default 5ms.
	ElectionRoundTrip time.Duration
	// SyncEvery is the follower durability cadence: every SyncEvery
	// commits, reachable replicas sync their WAL so the log can be
	// truncated past them. Default 16.
	SyncEvery int
	// TruncateEvery is how many commits pass between log truncation
	// attempts. Default 64.
	TruncateEvery int
	// Downtime, when set, receives the virtual failover cost under
	// PhaseFailover (in addition to Stats).
	Downtime *simclock.Account
	// WrapNode, when set, wraps replica i's view of the store — the
	// fault-injection seam (chaos wraps single replicas in oss.Faulty).
	WrapNode func(id int, s oss.Store) oss.Store
}

func (o *Options) fillDefaults() {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.HeartbeatTimeout <= 0 {
		o.HeartbeatTimeout = 150 * time.Millisecond
	}
	if o.ElectionRoundTrip <= 0 {
		o.ElectionRoundTrip = 5 * time.Millisecond
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 16
	}
	if o.TruncateEvery <= 0 {
		o.TruncateEvery = 64
	}
}

// node is one replica: a kvstore DB plus the group's view of its
// replication position.
type node struct {
	id          int
	store       oss.Store // possibly fault-wrapped view
	db          *kvstore.DB
	alive       bool
	partitioned bool
	term        uint64 // highest term acknowledged
	applied     uint64 // highest log index applied (incl. memtable)
	durable     uint64 // highest applied index known persisted on OSS
}

// Stats snapshots replication counters.
type Stats struct {
	Replicas int
	Quorum   int
	Leader   int // -1 when none elected
	Term     uint64
	Commit   uint64 // highest quorum-committed log index

	Appends         int64 // log records written
	CatchUpRecords  int64 // log records replayed to lagging replicas
	FencingRejects  int64 // stale-term appends turned away
	Failovers       int64
	NodeFailures    int64 // replicas declared dead after storage errors
	LogTruncated    int64 // log records removed by truncation
	TruncateErrors  int64 // truncation deletes that failed (retried later)
	DowntimeVirtual time.Duration
}

// Group is one replicated index shard. All methods are safe for
// concurrent use; a single mutex serialises the replication state
// machine, mirroring the one-leader-at-a-time protocol it models.
//
// Lock order: Group.mu is a leaf in the system hierarchy (acquired
// below maintMu / FileLocks / ContainerLocks, above each replica's
// internal kvstore mutex; no callback under Group.mu takes any other
// system lock). See DESIGN.md §11.
type Group struct {
	store oss.Store
	opts  Options

	mu      sync.Mutex
	nodes   []*node
	leader  int    // -1 when unknown/dead
	term    uint64 // current group term (highest issued)
	logNext uint64 // next log index to append; indexes are 1-based

	truncated  uint64 // highest log index removed by truncation
	commit     uint64
	sinceSync  int
	sinceTrunc int
	stats      Stats
}

func (g *Group) logKey(idx uint64) string {
	return fmt.Sprintf("%slog/%016d", g.opts.Prefix, idx)
}

func encodeState(term, applied uint64) []byte {
	v := make([]byte, 16)
	binary.LittleEndian.PutUint64(v, term)
	binary.LittleEndian.PutUint64(v[8:], applied)
	return v
}

func decodeState(v []byte) (term, applied uint64) {
	if len(v) != 16 {
		return 0, 0
	}
	return binary.LittleEndian.Uint64(v), binary.LittleEndian.Uint64(v[8:])
}

// Open opens (or creates) a replica group: every replica's store is
// opened, its persisted position read, and any replica behind the log
// tail is caught up before the group serves, so a reboot transparently
// heals lagging followers. The initial election is free — there is no
// failover to account for at cold start.
func Open(store oss.Store, opts Options) (*Group, error) {
	opts.fillDefaults()
	if opts.Prefix == "" {
		return nil, errors.New("repl: Options.Prefix required")
	}
	g := &Group{store: store, opts: opts, leader: -1}

	maxApplied := uint64(0)
	for i := 0; i < opts.Replicas; i++ {
		ns := store
		if opts.WrapNode != nil {
			ns = opts.WrapNode(i, store)
		}
		kv := opts.KV
		kv.Prefix = fmt.Sprintf("%sn%d/", opts.Prefix, i)
		db, err := kvstore.Open(ns, kv)
		if err != nil {
			return nil, fmt.Errorf("repl: open replica %d: %w", i, err)
		}
		n := &node{id: i, store: ns, db: db, alive: true}
		if v, ok, err := db.Get(stateKey); err != nil {
			return nil, fmt.Errorf("repl: read replica %d state: %w", i, err)
		} else if ok {
			n.term, n.applied = decodeState(v)
			n.durable = n.applied
		}
		if n.term > g.term {
			g.term = n.term
		}
		if n.applied > maxApplied {
			maxApplied = n.applied
		}
		g.nodes = append(g.nodes, n)
	}

	// Recover the log bounds. The truncation invariant (the newest
	// record is never deleted) makes the highest surviving key the
	// authoritative tail.
	keys, err := store.List(opts.Prefix + "log/")
	if err != nil {
		return nil, fmt.Errorf("repl: list log: %w", err)
	}
	sort.Strings(keys)
	g.logNext = maxApplied + 1
	if len(keys) > 0 {
		first, err := strconv.ParseUint(strings.TrimPrefix(keys[0], opts.Prefix+"log/"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("repl: bad log key %q: %w", keys[0], err)
		}
		last, err := strconv.ParseUint(strings.TrimPrefix(keys[len(keys)-1], opts.Prefix+"log/"), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("repl: bad log key %q: %w", keys[len(keys)-1], err)
		}
		g.truncated = first - 1
		if last >= g.logNext {
			g.logNext = last + 1
		}
	} else {
		g.truncated = g.logNext - 1
	}

	// Bring every replica to the log tail so the group starts
	// converged; this also completes any record a crashed leader
	// appended to the log but never fanned out.
	for _, n := range g.nodes {
		if err := g.catchUpNodeLocked(n, g.logNext-1); err != nil {
			return nil, fmt.Errorf("repl: recover replica %d: %w", n.id, err)
		}
	}
	g.commit = g.logNext - 1
	if err := g.electLocked(false); err != nil {
		return nil, err
	}
	return g, nil
}

// ensureLeaderLocked elects a leader if the current one is dead or
// partitioned, charging the election as a failover.
func (g *Group) ensureLeaderLocked() error {
	if g.leader >= 0 {
		n := g.nodes[g.leader]
		if n.alive && !n.partitioned {
			return nil
		}
		g.leader = -1
	}
	return g.electLocked(true)
}

// electLocked picks the most up-to-date reachable replica as leader at
// term+1. charge=false is the cold-start path (Open), where no failure
// was detected and no downtime accrues.
func (g *Group) electLocked(charge bool) error {
	var voters []*node
	for _, n := range g.nodes {
		if n.alive && !n.partitioned {
			voters = append(voters, n)
		}
	}
	if len(voters) < g.quorum() {
		g.leader = -1
		return fmt.Errorf("repl: elect with %d of %d replicas reachable: %w", len(voters), len(g.nodes), ErrNoQuorum)
	}
	if charge {
		d := g.opts.HeartbeatTimeout + 2*g.opts.ElectionRoundTrip
		if g.opts.Downtime != nil {
			g.opts.Downtime.ChargeCPU(PhaseFailover, d)
		}
		g.stats.Failovers++
		g.stats.DowntimeVirtual += d
	}
	best := voters[0]
	for _, n := range voters[1:] {
		if n.applied > best.applied {
			best = n
		}
	}
	g.term++
	for _, n := range voters {
		if g.term > n.term {
			n.term = g.term
		}
	}
	// The new leader completes its predecessor's dangling log suffix
	// (records appended to the log but never quorum-committed) before
	// serving — the raft rule that a leader never discards log entries.
	if err := g.catchUpNodeLocked(best, g.logNext-1); err != nil {
		g.failNodeLocked(best)
		return fmt.Errorf("repl: new leader %d catch-up: %w", best.id, err)
	}
	g.leader = best.id
	g.commit = best.applied
	return nil
}

func (g *Group) quorum() int { return len(g.nodes)/2 + 1 }

// failNodeLocked declares a replica dead after a storage error: its
// in-memory state (memtable, WAL buffer) is considered lost, exactly as
// a crash would lose it. Restart recovers it from OSS plus the log.
func (g *Group) failNodeLocked(n *node) {
	if !n.alive {
		return
	}
	n.alive = false
	n.db = nil
	n.applied = n.durable // only the persisted prefix survives the crash
	g.stats.NodeFailures++
	if g.leader == n.id {
		g.leader = -1
	}
}

// Apply replicates one batch: log append (durability point), quorum
// fan-out, commit. A dead or partitioned leader is replaced
// transparently — the caller only sees an error when no quorum is
// reachable or the batch could not reach the log.
func (g *Group) Apply(b *kvstore.Batch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ensureLeaderLocked(); err != nil {
		return err
	}
	return g.appendAsLocked(g.term, b)
}

// appendAsLocked runs the append protocol on behalf of a leader at the
// given term. The term guard is the fencing point: a quorum at a higher
// term turns the append away before it reaches the log.
func (g *Group) appendAsLocked(term uint64, b *kvstore.Batch) error {
	if term < g.term {
		g.stats.FencingRejects++
		return fmt.Errorf("repl: append at term %d, group at term %d: %w", term, g.term, ErrFenced)
	}
	idx := g.logNext
	rec := kvstore.AppendReplRecord(nil, term, idx, b)
	if err := g.store.Put(g.logKey(idx), rec); err != nil {
		return fmt.Errorf("repl: append log record %d: %w", idx, err)
	}
	g.logNext++
	g.stats.Appends++

	acks := 0
	for _, n := range g.nodes {
		if !n.alive || n.partitioned {
			continue
		}
		if err := g.appendToNodeLocked(n, term, idx, b); err != nil {
			g.failNodeLocked(n)
			continue
		}
		acks++
	}
	if acks < g.quorum() {
		g.leader = -1
		return fmt.Errorf("repl: record %d acked by %d of %d: %w", idx, acks, len(g.nodes), ErrNoQuorum)
	}
	g.commit = idx
	g.maybeSyncTruncateLocked()
	return nil
}

// appendToNodeLocked delivers record (term, idx, b) to one replica,
// replaying the log first if the replica lags (a healed partition, a
// restarted node). The replica's position marker is folded into the
// same kvstore batch, so position and data commit atomically.
func (g *Group) appendToNodeLocked(n *node, term, idx uint64, b *kvstore.Batch) error {
	if term < n.term {
		g.stats.FencingRejects++
		return fmt.Errorf("repl: replica %d at term %d rejects term %d: %w", n.id, n.term, term, ErrFenced)
	}
	if n.applied+1 < idx {
		if err := g.catchUpNodeLocked(n, idx-1); err != nil {
			return err
		}
	}
	if idx <= n.applied {
		return nil // already delivered via catch-up
	}
	nb := b.Clone()
	nb.Put(stateKey, encodeState(term, idx))
	if err := n.db.Apply(nb); err != nil {
		return fmt.Errorf("repl: replica %d apply %d: %w", n.id, idx, err)
	}
	n.term, n.applied = term, idx
	return nil
}

// catchUpNodeLocked replays log records (n.applied, upTo] to a replica.
func (g *Group) catchUpNodeLocked(n *node, upTo uint64) error {
	for idx := n.applied + 1; idx <= upTo; idx++ {
		if idx <= g.truncated {
			return fmt.Errorf("repl: replica %d needs truncated log record %d", n.id, idx)
		}
		rec, err := g.store.Get(g.logKey(idx))
		if err != nil {
			return fmt.Errorf("repl: read log record %d: %w", idx, err)
		}
		term, ridx, b, err := kvstore.DecodeReplRecord(rec)
		if err != nil {
			return fmt.Errorf("repl: log record %d: %w", idx, err)
		}
		if ridx != idx {
			return fmt.Errorf("repl: log record %d stamped %d", idx, ridx)
		}
		nb := b.Clone()
		if term < n.term {
			term = n.term // an old-term record replayed after a newer election keeps the newer term
		}
		nb.Put(stateKey, encodeState(term, idx))
		if err := n.db.Apply(nb); err != nil {
			return fmt.Errorf("repl: replica %d replay %d: %w", n.id, idx, err)
		}
		n.term, n.applied = term, idx
		g.stats.CatchUpRecords++
	}
	return nil
}

// maybeSyncTruncateLocked runs the periodic durability and log-size
// work: sync reachable replicas every SyncEvery commits (advancing
// their durable watermark), and drop log records every replica has
// durably applied every TruncateEvery commits. The newest record is
// always retained so the tail position survives a full restart.
func (g *Group) maybeSyncTruncateLocked() {
	g.sinceSync++
	if g.sinceSync >= g.opts.SyncEvery {
		g.sinceSync = 0
		for _, n := range g.nodes {
			if !n.alive || n.partitioned {
				continue
			}
			if err := n.db.Sync(); err != nil {
				g.failNodeLocked(n)
				continue
			}
			n.durable = n.applied
		}
	}
	g.sinceTrunc++
	if g.sinceTrunc < g.opts.TruncateEvery {
		return
	}
	g.sinceTrunc = 0
	if g.logNext < 3 {
		return // nothing beyond the always-retained newest record
	}
	min := g.commit
	for _, n := range g.nodes {
		if n.durable < min {
			min = n.durable // dead replicas pin the log until they restart
		}
	}
	if min >= g.logNext-1 {
		min = g.logNext - 2 // retain the newest record
	}
	for idx := g.truncated + 1; idx <= min; idx++ {
		if err := g.store.Delete(g.logKey(idx)); err != nil {
			g.stats.TruncateErrors++ // harmless: retried next round
			return
		}
		g.truncated = idx
		g.stats.LogTruncated++
	}
}

// Get reads a key through the current leader.
func (g *Group) Get(key []byte) ([]byte, bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ensureLeaderLocked(); err != nil {
		return nil, false, err
	}
	return g.nodes[g.leader].db.Get(key)
}

// GetMulti resolves many keys through the current leader.
func (g *Group) GetMulti(keys [][]byte) ([][]byte, []bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ensureLeaderLocked(); err != nil {
		return nil, nil, err
	}
	return g.nodes[g.leader].db.GetMulti(keys)
}

// Put stores one key through the replicated log.
func (g *Group) Put(key, value []byte) error {
	var b kvstore.Batch
	b.Put(key, value)
	return g.Apply(&b)
}

// Delete removes one key through the replicated log.
func (g *Group) Delete(key []byte) error {
	var b kvstore.Batch
	b.Delete(key)
	return g.Apply(&b)
}

// Scan visits the leader's live keys in order, hiding the reserved
// replication state key so the group reads like a plain kvstore.
func (g *Group) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ensureLeaderLocked(); err != nil {
		return err
	}
	return g.nodes[g.leader].db.Scan(start, end, func(k, v []byte) bool {
		if string(k) == string(stateKey) {
			return true
		}
		return fn(k, v)
	})
}

// Flush makes the group durable beyond the log: the leader flushes its
// memtable (keeping its read path on SSTables), followers sync their
// WALs, and the durable watermarks advance so truncation can proceed.
func (g *Group) Flush() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ensureLeaderLocked(); err != nil {
		return err
	}
	ok := 0
	for _, n := range g.nodes {
		if !n.alive || n.partitioned {
			continue
		}
		var err error
		if n.id == g.leader {
			err = n.db.Flush()
		} else {
			err = n.db.Sync()
		}
		if err != nil {
			g.failNodeLocked(n)
			continue
		}
		n.durable = n.applied
		ok++
	}
	if ok < g.quorum() {
		return fmt.Errorf("repl: flush reached %d of %d replicas: %w", ok, len(g.nodes), ErrNoQuorum)
	}
	return nil
}

// Stats implements the kvstore-shaped stats surface (globalindex
// embeds it as the shard's KV stats): the current leader's engine
// counters, or a zero value when no replica is reachable.
func (g *Group) Stats() kvstore.Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.leader >= 0 && g.nodes[g.leader].alive {
		return g.nodes[g.leader].db.Stats()
	}
	for _, n := range g.nodes {
		if n.alive {
			return n.db.Stats()
		}
	}
	return kvstore.Stats{}
}

// ReplStats snapshots the replication counters.
func (g *Group) ReplStats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.stats
	s.Replicas = len(g.nodes)
	s.Quorum = g.quorum()
	s.Leader = g.leader
	s.Term = g.term
	s.Commit = g.commit
	return s
}

// Leader returns the current leader id, or -1 if none is elected.
func (g *Group) Leader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leader
}

// Kill crashes a replica: its in-memory state (memtable, WAL buffer,
// unsynced applies) is lost; only what reached OSS survives. A killed
// leader triggers an election on the next operation.
func (g *Group) Kill(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.nodes) {
		return
	}
	g.failNodeLocked(g.nodes[id])
}

// KillLeader crashes the current leader, returning its id (-1 if no
// leader was elected).
func (g *Group) KillLeader() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := g.leader
	if id >= 0 {
		g.failNodeLocked(g.nodes[id])
	}
	return id
}

// Restart reboots a crashed replica: reopen its store, read the
// persisted position (guaranteed consistent by all-or-nothing batch
// recovery), replay the log tail it missed.
func (g *Group) Restart(id int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.nodes) {
		return fmt.Errorf("repl: restart unknown replica %d", id)
	}
	n := g.nodes[id]
	if n.alive {
		return nil
	}
	kv := g.opts.KV
	kv.Prefix = fmt.Sprintf("%sn%d/", g.opts.Prefix, id)
	db, err := kvstore.Open(n.store, kv)
	if err != nil {
		return fmt.Errorf("repl: reopen replica %d: %w", id, err)
	}
	n.db = db
	n.term, n.applied = 0, 0
	if v, ok, err := db.Get(stateKey); err != nil {
		return fmt.Errorf("repl: read replica %d state: %w", id, err)
	} else if ok {
		n.term, n.applied = decodeState(v)
	}
	n.durable = n.applied
	if err := g.catchUpNodeLocked(n, g.commit); err != nil {
		return fmt.Errorf("repl: replica %d catch-up: %w", id, err)
	}
	n.alive = true
	return nil
}

// Partition isolates a replica: still running, but unreachable for
// appends, elections, and reads. A partitioned leader is deposed on the
// next operation.
func (g *Group) Partition(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.nodes) {
		return
	}
	g.nodes[id].partitioned = true
	if g.leader == id {
		g.leader = -1
	}
}

// Heal reconnects a partitioned replica; it catches up on the next
// append that reaches it.
func (g *Group) Heal(id int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if id < 0 || id >= len(g.nodes) {
		return
	}
	g.nodes[id].partitioned = false
}

// Handle captures the leader lease a client holds: the group and the
// term the leader was elected at. Applying through a stale handle —
// one whose term has been superseded by a later election — is fenced.
type Handle struct {
	g    *Group
	term uint64
}

// Handle returns a lease on the current leader.
func (g *Group) Handle() (*Handle, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.ensureLeaderLocked(); err != nil {
		return nil, err
	}
	return &Handle{g: g, term: g.term}, nil
}

// Apply replicates a batch on behalf of the leader this handle was
// issued for. Returns ErrFenced if a newer leader has been elected
// since — the deposed leader's write never reaches the log.
func (h *Handle) Apply(b *kvstore.Batch) error {
	if b == nil || b.Len() == 0 {
		return nil
	}
	h.g.mu.Lock()
	defer h.g.mu.Unlock()
	return h.g.appendAsLocked(h.term, b)
}

// Close flushes and closes every live replica.
func (g *Group) Close() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	var first error
	for _, n := range g.nodes {
		if !n.alive {
			continue
		}
		if err := n.db.Close(); err != nil && first == nil {
			first = err
		}
	}
	g.leader = -1
	return first
}
