package repl

import (
	"errors"
	"fmt"
	"testing"

	"slimstore/internal/kvstore"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

func testOpts() Options {
	return Options{
		Replicas: 3,
		Prefix:   "grp/",
		// Tiny thresholds so WAL activity and truncation happen inside
		// small tests.
		KV:                kvstore.Options{WALFlushBytes: 64},
		HeartbeatTimeout:  150 * 1e6, // 150ms, pinned so downtime assertions are exact
		ElectionRoundTrip: 5 * 1e6,   // 5ms
		SyncEvery:         4,
		TruncateEvery:     8,
	}
}

func key(i int) []byte { return []byte(fmt.Sprintf("key-%04d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%04d", i)) }
func putBatch(i int) *kvstore.Batch {
	var b kvstore.Batch
	b.Put(key(i), val(i))
	return &b
}

// mustGet asserts the group resolves key(i) to val(i).
func mustGet(t *testing.T, g *Group, i int) {
	t.Helper()
	v, ok, err := g.Get(key(i))
	if err != nil {
		t.Fatalf("get %d: %v", i, err)
	}
	if !ok || string(v) != string(val(i)) {
		t.Fatalf("get %d: ok=%v v=%q", i, ok, v)
	}
}

func TestGroupApplyAndRead(t *testing.T) {
	g, err := Open(oss.NewMem(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		mustGet(t, g, i)
	}
	// Batched read.
	keys := [][]byte{key(3), key(7), []byte("missing")}
	vals, found, err := g.GetMulti(keys)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || !found[1] || found[2] {
		t.Fatalf("found = %v", found)
	}
	if string(vals[0]) != string(val(3)) {
		t.Fatalf("vals[0] = %q", vals[0])
	}
	// Scan hides the reserved state key.
	n := 0
	if err := g.Scan(nil, nil, func(k, v []byte) bool {
		if string(k) == string(stateKey) {
			t.Fatalf("state key leaked into scan")
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("scan saw %d keys, want 20", n)
	}
	s := g.ReplStats()
	if s.Commit != 20 || s.Appends != 20 || s.Leader < 0 {
		t.Fatalf("stats = %+v", s)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaderFailover(t *testing.T) {
	acct := simclock.NewAccount()
	opts := testOpts()
	opts.Downtime = acct
	g, err := Open(oss.NewMem(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	old := g.KillLeader()
	if old < 0 {
		t.Fatal("no leader to kill")
	}
	// The next operation elects a new leader transparently and serves
	// every committed write.
	for i := 10; i < 20; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatalf("apply after leader kill: %v", err)
		}
	}
	for i := 0; i < 20; i++ {
		mustGet(t, g, i)
	}
	s := g.ReplStats()
	if s.Leader == old {
		t.Fatalf("killed leader %d still leads", old)
	}
	if s.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", s.Failovers)
	}
	want := opts.HeartbeatTimeout + 2*opts.ElectionRoundTrip
	if s.DowntimeVirtual != want {
		t.Fatalf("downtime = %v, want %v", s.DowntimeVirtual, want)
	}
	if acct.CPUPhase(PhaseFailover) != want {
		t.Fatalf("account charged %v, want %v", acct.CPUPhase(PhaseFailover), want)
	}
	// The crashed ex-leader rejoins and catches up from the log.
	if err := g.Restart(old); err != nil {
		t.Fatal(err)
	}
	if g.ReplStats().CatchUpRecords == 0 {
		t.Fatal("restart did not replay any log records")
	}
}

func TestFencingStaleLeader(t *testing.T) {
	g, err := Open(oss.NewMem(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(putBatch(0)); err != nil {
		t.Fatal(err)
	}
	h, err := g.Handle()
	if err != nil {
		t.Fatal(err)
	}
	// Partition the leader; a new leader is elected at a higher term.
	oldLeader := g.Leader()
	g.Partition(oldLeader)
	if err := g.Apply(putBatch(1)); err != nil {
		t.Fatalf("apply during partition: %v", err)
	}
	g.Heal(oldLeader)
	// The deposed leader's lease is now stale: its append must be
	// fenced before anything reaches the log.
	appendsBefore := g.ReplStats().Appends
	if err := h.Apply(putBatch(99)); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale apply err = %v, want ErrFenced", err)
	}
	s := g.ReplStats()
	if s.Appends != appendsBefore {
		t.Fatal("fenced append still reached the log")
	}
	if s.FencingRejects == 0 {
		t.Fatal("fencing reject not counted")
	}
	if _, ok, err := g.Get(key(99)); err != nil || ok {
		t.Fatalf("fenced write visible: ok=%v err=%v", ok, err)
	}
	// A fresh handle at the current term works.
	h2, err := g.Handle()
	if err != nil {
		t.Fatal(err)
	}
	if err := h2.Apply(putBatch(2)); err != nil {
		t.Fatal(err)
	}
	mustGet(t, g, 2)
}

func TestNoQuorumFailsLoudly(t *testing.T) {
	g, err := Open(oss.NewMem(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(putBatch(0)); err != nil {
		t.Fatal(err)
	}
	// Kill two of three: one survivor < quorum of 2.
	g.Kill(0)
	g.Kill(1)
	if err := g.Apply(putBatch(1)); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("apply err = %v, want ErrNoQuorum", err)
	}
	if _, _, err := g.Get(key(0)); !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("get err = %v, want ErrNoQuorum", err)
	}
	// Restarts restore the quorum; the group resumes where it stopped.
	if err := g.Restart(0); err != nil {
		t.Fatal(err)
	}
	if err := g.Restart(1); err != nil {
		t.Fatal(err)
	}
	if err := g.Apply(putBatch(1)); err != nil {
		t.Fatal(err)
	}
	mustGet(t, g, 0)
	mustGet(t, g, 1)
}

// TestReopenRecovers crashes the whole group process (no Close) and
// reopens it: every quorum-committed batch must be served, because the
// log put was the durability point.
func TestReopenRecovers(t *testing.T) {
	store := oss.NewMem()
	g, err := Open(store, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Abandon g without Close: memtables and WAL buffers die with it.
	g2, err := Open(store, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		mustGet(t, g2, i)
	}
	if c := g2.ReplStats().Commit; c != 30 {
		t.Fatalf("recovered commit = %d, want 30", c)
	}
}

// TestFollowerCrashMidApply is the replicated extension of the kvstore
// torn-batch cases: a follower whose storage dies mid-stream must, when
// inspected directly, expose all-or-nothing batch visibility — its
// persisted position marker and its data always agree — and must
// converge after a restart plus log catch-up.
func TestFollowerCrashMidApply(t *testing.T) {
	store := oss.NewMem()
	var faulty *oss.Faulty
	opts := testOpts()
	opts.KV.WALFlushBytes = 1 // every apply syncs, so the fault lands mid-stream
	opts.WrapNode = func(id int, s oss.Store) oss.Store {
		if id != 2 {
			return s
		}
		faulty = oss.NewFaulty(s)
		return faulty
	}
	g, err := Open(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailPutsAfter(12) // crash replica 2 partway through the run
	for i := 0; i < 20; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatalf("apply %d: %v", i, err) // quorum of 2 must survive
		}
	}
	if g.ReplStats().NodeFailures == 0 {
		t.Fatal("fault injection never crashed replica 2")
	}

	// Inspect the crashed replica's store directly, as recovery would:
	// reopen its kvstore and check the all-or-nothing contract.
	faulty.Clear()
	kv := opts.KV
	kv.Prefix = "grp/n2/"
	db, err := kvstore.Open(faulty, kv)
	if err != nil {
		t.Fatal(err)
	}
	applied := uint64(0)
	if v, ok, err := db.Get(stateKey); err != nil {
		t.Fatal(err)
	} else if ok {
		_, applied = decodeState(v)
	}
	if applied == 0 || applied >= 20 {
		t.Fatalf("replica 2 applied = %d, want a strict mid-stream prefix", applied)
	}
	for i := 0; i < 20; i++ {
		_, ok, err := db.Get(key(i))
		if err != nil {
			t.Fatal(err)
		}
		// Log index i+1 carries batch i: everything at or below the
		// position marker is present, everything above it is absent.
		if want := uint64(i+1) <= applied; ok != want {
			t.Fatalf("replica 2 key %d: present=%v, applied=%d", i, ok, applied)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart through the group: log catch-up completes the suffix.
	if err := g.Restart(2); err != nil {
		t.Fatal(err)
	}
	if got, want := g.nodes[2].applied, g.ReplStats().Commit; got != want {
		t.Fatalf("recovered replica applied = %d, want commit %d", got, want)
	}
	for i := 0; i < 20; i++ {
		mustGet(t, g, i)
	}
}

func TestLogTruncation(t *testing.T) {
	store := oss.NewMem()
	opts := testOpts()
	opts.SyncEvery = 1
	opts.TruncateEvery = 4
	g, err := Open(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := g.ReplStats()
	if s.LogTruncated == 0 {
		t.Fatalf("no log records truncated: %+v", s)
	}
	keys, err := store.List("grp/log/")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 || len(keys) >= 40 {
		t.Fatalf("log holds %d records after truncation", len(keys))
	}
	// The truncated group still reopens and serves everything.
	g2, err := Open(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		mustGet(t, g2, i)
	}
}

// TestSingleReplicaGroup covers the degenerate 1-replica configuration:
// quorum 1, no fan-out, but the same durable log semantics.
func TestSingleReplicaGroup(t *testing.T) {
	store := oss.NewMem()
	opts := testOpts()
	opts.Replicas = 1
	g, err := Open(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := g.Apply(putBatch(i)); err != nil {
			t.Fatal(err)
		}
	}
	g2, err := Open(store, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustGet(t, g2, i)
	}
}
