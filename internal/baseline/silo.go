package baseline

import (
	"fmt"
	"sync"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

// SiLO implements the similarity-locality deduplication of Xia et al.
// (ATC'11): the input stream is split into segments, similar segments are
// grouped into blocks, a small in-memory similarity hash table (SHTable)
// maps each segment's representative fingerprint to the block holding it,
// and a block-granularity cache exploits locality — when a similar segment
// is detected, its whole block's fingerprints are read (one OSS access)
// and nearby duplicates are filtered from the cache.
type SiLO struct {
	store oss.Store
	costs simclock.Costs
	cut   chunker.Cutter

	segmentChunks int // chunks per segment
	segsPerBlock  int // segments per block
	cacheBlocks   int // block cache capacity

	mu       sync.Mutex
	shtable  map[uint64]int // representative fp -> block number
	versions map[string]int

	// Block under construction.
	curBlock   int
	curSegs    int
	curFPs     []fpSize
	containers *container.Store
}

type fpSize struct {
	fp   fingerprint.FP
	id   container.ID
	size uint32
}

// NewSiLO opens a SiLO repository over an OSS store.
func NewSiLO(store oss.Store, costs simclock.Costs, params chunker.Params, containerCap int) (*SiLO, error) {
	cut, err := chunker.New("fastcdc", params)
	if err != nil {
		return nil, err
	}
	cs, err := container.NewStore(store, containerCap)
	if err != nil {
		return nil, err
	}
	return &SiLO{
		store:         store,
		costs:         costs,
		cut:           cut,
		segmentChunks: 512,
		segsPerBlock:  16,
		cacheBlocks:   32,
		shtable:       make(map[uint64]int),
		versions:      make(map[string]int),
		containers:    cs,
		curBlock:      1,
	}, nil
}

// Name implements System.
func (s *SiLO) Name() string { return "silo" }

func (s *SiLO) blockKey(n int) string { return fmt.Sprintf("silo/blocks/%08d", n) }

// encodeBlock serialises a block's fingerprint list.
func encodeBlock(fps []fpSize) []byte {
	out := make([]byte, 0, len(fps)*(fingerprint.Size+12))
	var tmp [12]byte
	for _, e := range fps {
		out = append(out, e.fp[:]...)
		for i := 0; i < 8; i++ {
			tmp[i] = byte(uint64(e.id) >> (8 * i))
		}
		tmp[8] = byte(e.size)
		tmp[9] = byte(e.size >> 8)
		tmp[10] = byte(e.size >> 16)
		tmp[11] = byte(e.size >> 24)
		out = append(out, tmp[:]...)
	}
	return out
}

func decodeBlock(b []byte) []fpSize {
	rec := fingerprint.Size + 12
	out := make([]fpSize, 0, len(b)/rec)
	for p := 0; p+rec <= len(b); p += rec {
		var e fpSize
		copy(e.fp[:], b[p:])
		q := p + fingerprint.Size
		var id uint64
		for i := 0; i < 8; i++ {
			id |= uint64(b[q+i]) << (8 * i)
		}
		e.id = container.ID(id)
		e.size = uint32(b[q+8]) | uint32(b[q+9])<<8 | uint32(b[q+10])<<16 | uint32(b[q+11])<<24
		out = append(out, e)
	}
	return out
}

// Backup implements System.
func (s *SiLO) Backup(fileID string, data []byte) (*Result, error) {
	acct := simclock.NewAccount()
	metered := oss.NewMetered(s.store, s.costs, acct)
	cs := s.containers.View(metered)
	builder := container.NewBuilder(cs)

	res := &Result{FileID: fileID, LogicalBytes: int64(len(data)), Account: acct}
	s.mu.Lock()
	res.Version = s.versions[fileID]
	s.versions[fileID] = res.Version + 1
	s.mu.Unlock()

	// Per-job block cache (LRU by insertion).
	cache := make(map[fingerprint.FP]fpSize)
	var cacheOrder []int // block numbers in load order
	loadedBlocks := make(map[int][]fpSize)
	loadBlock := func(n int) error {
		if _, ok := loadedBlocks[n]; ok {
			return nil
		}
		b, err := metered.Get(s.blockKey(n))
		if err != nil {
			return nil // block may be the one under construction
		}
		fps := decodeBlock(b)
		loadedBlocks[n] = fps
		cacheOrder = append(cacheOrder, n)
		for _, e := range fps {
			cache[e.fp] = e
			acct.ChargeCPU(simclock.PhaseIndexQuery, s.costs.IndexInsert)
		}
		if len(cacheOrder) > s.cacheBlocks {
			old := cacheOrder[0]
			cacheOrder = cacheOrder[1:]
			for _, e := range loadedBlocks[old] {
				delete(cache, e.fp)
			}
			delete(loadedBlocks, old)
		}
		return nil
	}

	stream := chunker.NewStream(data, s.cut, acct, s.costs)
	var seg []chunker.Chunk
	var segFPs []fingerprint.FP

	flushSegment := func() error {
		if len(seg) == 0 {
			return nil
		}
		// Representative fingerprint: the minimum (Broder sampling).
		rep := segFPs[0].Uint64()
		for _, fp := range segFPs[1:] {
			if v := fp.Uint64(); v < rep {
				rep = v
			}
		}
		s.mu.Lock()
		blockNo, similar := s.shtable[rep]
		s.mu.Unlock()
		acct.ChargeCPU(simclock.PhaseIndexQuery, s.costs.IndexLookup)
		if similar {
			if err := loadBlock(blockNo); err != nil {
				return err
			}
		}
		// Dedup the segment against the block cache.
		var outFPs []fpSize
		for i, ch := range seg {
			fp := segFPs[i]
			acct.ChargeCPU(simclock.PhaseIndexQuery, s.costs.IndexLookup)
			if e, dup := cache[fp]; dup {
				res.DuplicateBytes += int64(ch.Size())
				outFPs = append(outFPs, e)
			} else {
				id, err := builder.Add(fp, ch.Data)
				if err != nil {
					return err
				}
				e := fpSize{fp: fp, id: id, size: uint32(ch.Size())}
				res.StoredBytes += int64(ch.Size())
				cache[fp] = e // write-buffer locality
				outFPs = append(outFPs, e)
			}
			res.NumChunks++
		}
		// Append the segment to the current block; persist full blocks.
		s.mu.Lock()
		s.shtable[rep] = s.curBlock
		s.curFPs = append(s.curFPs, outFPs...)
		s.curSegs++
		var persist []fpSize
		var persistNo int
		if s.curSegs >= s.segsPerBlock {
			persist = s.curFPs
			persistNo = s.curBlock
			s.curBlock++
			s.curSegs = 0
			s.curFPs = nil
		}
		s.mu.Unlock()
		if persist != nil {
			if err := metered.Put(s.blockKey(persistNo), encodeBlock(persist)); err != nil {
				return err
			}
		}
		seg = seg[:0]
		segFPs = segFPs[:0]
		return nil
	}

	for {
		ch, ok := stream.Next()
		if !ok {
			break
		}
		fp := fingerprint.OfBytes(ch.Data)
		acct.ChargeCPUBytes(simclock.PhaseFingerprint, int64(ch.Size()), s.costs.SHA1PerByte)
		seg = append(seg, ch)
		segFPs = append(segFPs, fp)
		if len(seg) >= s.segmentChunks {
			if err := flushSegment(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushSegment(); err != nil {
		return nil, err
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	// Persist the partial block so subsequent versions can dedup against
	// it (SiLO flushes blocks at backup completion).
	s.mu.Lock()
	if len(s.curFPs) > 0 {
		persist := s.curFPs
		persistNo := s.curBlock
		s.curBlock++
		s.curSegs = 0
		s.curFPs = nil
		s.mu.Unlock()
		if err := metered.Put(s.blockKey(persistNo), encodeBlock(persist)); err != nil {
			return nil, err
		}
	} else {
		s.mu.Unlock()
	}
	res.Elapsed = finishElapsed(acct)
	return res, nil
}
