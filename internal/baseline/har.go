package baseline

import (
	"fmt"
	"sync"

	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

// HAR implements the history-aware rewriting of Fu et al. (ATC'14): the
// backup of version N counts each container's utilization from N's point
// of view; containers below the threshold are recorded as sparse, and
// during the backup of version N+1 any duplicate chunk whose copy lives in
// one of N's sparse containers is rewritten (stored again) instead of
// referenced. The benefit therefore lands one version late — the paper's
// §V-B contrasts this with SLIMSTORE's SCC, which repairs the current
// version immediately.
//
// Deduplication itself uses an exact in-memory fingerprint index (the HAR
// paper's setting: a dedicated backup server holding the full index); the
// Fig 8 comparisons measure the *container layout* HAR produces, restored
// through the OPT/LAW cache.
type HAR struct {
	store oss.Store
	costs simclock.Costs
	cut   chunker.Cutter

	utilThreshold float64

	mu         sync.Mutex
	index      map[fingerprint.FP]fpSize
	sparse     map[string]map[container.ID]bool // per-file sparse set from the previous version
	chunkCount map[container.ID]int
	versions   map[string]int
	containers *container.Store
}

// NewHAR opens a HAR repository over an OSS store.
func NewHAR(store oss.Store, costs simclock.Costs, params chunker.Params, containerCap int, utilThreshold float64) (*HAR, error) {
	cut, err := chunker.New("fastcdc", params)
	if err != nil {
		return nil, err
	}
	cs, err := container.NewStore(store, containerCap)
	if err != nil {
		return nil, err
	}
	if utilThreshold <= 0 {
		utilThreshold = 0.3
	}
	return &HAR{
		store:         store,
		costs:         costs,
		cut:           cut,
		utilThreshold: utilThreshold,
		index:         make(map[fingerprint.FP]fpSize),
		sparse:        make(map[string]map[container.ID]bool),
		chunkCount:    make(map[container.ID]int),
		versions:      make(map[string]int),
		containers:    cs,
	}, nil
}

// Name implements System.
func (h *HAR) Name() string { return "har" }

func (h *HAR) recipeKey(fileID string, version int) string {
	return fmt.Sprintf("har/recipes/%x/%08d", fileID, version)
}

// HARResult extends Result with rewriting counters.
type HARResult struct {
	Result
	RewrittenBytes  int64
	RewrittenChunks int
	SparseDetected  int
}

// Backup deduplicates one version, rewriting chunks from the previous
// version's sparse containers.
func (h *HAR) Backup(fileID string, data []byte) (*Result, error) {
	r, err := h.BackupHAR(fileID, data)
	if err != nil {
		return nil, err
	}
	return &r.Result, nil
}

// BackupHAR is Backup with the HAR-specific counters.
func (h *HAR) BackupHAR(fileID string, data []byte) (*HARResult, error) {
	acct := simclock.NewAccount()
	metered := oss.NewMetered(h.store, h.costs, acct)
	cs := h.containers.View(metered)
	builder := container.NewBuilder(cs)

	res := &HARResult{Result: Result{FileID: fileID, LogicalBytes: int64(len(data)), Account: acct}}
	h.mu.Lock()
	res.Version = h.versions[fileID]
	h.versions[fileID] = res.Version + 1
	sparse := h.sparse[fileID]
	h.mu.Unlock()

	var out []fpSize
	refs := make(map[container.ID]int)

	stream := chunker.NewStream(data, h.cut, acct, h.costs)
	for {
		ch, ok := stream.Next()
		if !ok {
			break
		}
		fp := fingerprint.OfBytes(ch.Data)
		acct.ChargeCPUBytes(simclock.PhaseFingerprint, int64(ch.Size()), h.costs.SHA1PerByte)
		acct.ChargeCPU(simclock.PhaseIndexQuery, h.costs.IndexLookup)

		h.mu.Lock()
		e, dup := h.index[fp]
		h.mu.Unlock()

		rewrite := dup && sparse != nil && sparse[e.id]
		if dup && !rewrite {
			res.DuplicateBytes += int64(ch.Size())
		} else {
			id, err := builder.Add(fp, ch.Data)
			if err != nil {
				return nil, err
			}
			e = fpSize{fp: fp, id: id, size: uint32(ch.Size())}
			res.StoredBytes += int64(ch.Size())
			h.mu.Lock()
			h.index[fp] = e
			h.chunkCount[id]++
			h.mu.Unlock()
			if rewrite {
				res.RewrittenBytes += int64(ch.Size())
				res.RewrittenChunks++
			}
		}
		out = append(out, e)
		refs[e.id]++
		res.NumChunks++
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	if err := metered.Put(h.recipeKey(fileID, res.Version), encodeBlock(out)); err != nil {
		return nil, err
	}

	// Utilization pass: record this version's sparse containers for the
	// NEXT backup (the HAR timing).
	newSparse := make(map[container.ID]bool)
	h.mu.Lock()
	for id, used := range refs {
		total := h.chunkCount[id]
		if total > 0 && float64(used)/float64(total) < h.utilThreshold {
			newSparse[id] = true
		}
	}
	h.sparse[fileID] = newSparse
	h.mu.Unlock()
	res.SparseDetected = len(newSparse)

	res.Elapsed = finishElapsed(acct)
	return res, nil
}

// Sequence loads the restore request sequence of a version, for driving a
// cache policy (the harness pairs HAR with cache.NewOPT as in the paper).
func (h *HAR) Sequence(fileID string, version int) ([]cache.Request, error) {
	b, err := h.store.Get(h.recipeKey(fileID, version))
	if err != nil {
		return nil, fmt.Errorf("har: sequence %s v%d: %w", fileID, version, err)
	}
	fps := decodeBlock(b)
	seq := make([]cache.Request, 0, len(fps))
	for _, e := range fps {
		seq = append(seq, cache.Request{FP: e.fp, Container: e.id, Size: e.size})
	}
	return seq, nil
}

// Fetcher returns a container fetcher charging acct.
func (h *HAR) Fetcher(acct *simclock.Account) cache.Fetcher {
	cs := h.containers.View(oss.NewMetered(h.store, h.costs, acct))
	return func(id container.ID) (*container.Container, error) {
		return cs.Read(id)
	}
}
