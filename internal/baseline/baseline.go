// Package baseline implements the systems SLIMSTORE is evaluated against
// in the paper (§VII-A): SiLO (ATC'11) and Sparse Indexing (FAST'09) as
// fast-online-deduplication competitors (Fig 7), HAR (ATC'14) as the
// rewriting competitor for restore performance (Fig 8c), and a
// restic-style repository as the open-source comparator (Fig 10).
//
// Each baseline is a real implementation of its paper's core mechanism,
// running over the same OSS substrate and cost model as SLIMSTORE so the
// comparisons measure algorithmic differences, not harness artifacts.
package baseline

import (
	"time"

	"slimstore/internal/simclock"
)

// Result reports one baseline backup job, mirroring the fields of
// lnode.BackupStats that the comparisons use.
type Result struct {
	FileID  string
	Version int

	LogicalBytes   int64
	DuplicateBytes int64
	StoredBytes    int64
	NumChunks      int

	Account *simclock.Account
	Elapsed time.Duration
}

// DedupRatio is eliminated bytes over input bytes.
func (r *Result) DedupRatio() float64 {
	if r.LogicalBytes == 0 {
		return 0
	}
	return float64(r.DuplicateBytes) / float64(r.LogicalBytes)
}

// ThroughputMBps is deduplication throughput in MB/s of virtual time.
func (r *Result) ThroughputMBps() float64 {
	return simclock.ThroughputMBps(r.LogicalBytes, r.Elapsed)
}

// System is the minimal backup interface the comparison harness drives.
type System interface {
	Name() string
	Backup(fileID string, data []byte) (*Result, error)
}

// finishElapsed computes a job's virtual elapsed time with the same
// three-way overlap model as lnode (reads, compute, and writes pipeline
// independently), so baseline comparisons isolate algorithmic costs.
func finishElapsed(acct *simclock.Account) time.Duration {
	io := acct.IO()
	elapsed := acct.CPUTime()
	if io.ReadTime > elapsed {
		elapsed = io.ReadTime
	}
	if io.WriteTime > elapsed {
		elapsed = io.WriteTime
	}
	return elapsed
}
