package baseline

import (
	"fmt"
	"sort"
	"sync"

	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

// SparseIndexing implements Lillibridge et al.'s sparse indexing
// (FAST'09): the stream is split into segments, each segment samples its
// fingerprints (mod-R "hooks"), a small in-memory sparse index maps hooks
// to the manifests (stored segment recipes) containing them, and each
// incoming segment deduplicates only against its top-k "champion"
// manifests — the previously stored segments sharing the most hooks.
type SparseIndexing struct {
	store oss.Store
	costs simclock.Costs
	cut   chunker.Cutter

	segmentChunks int
	sampler       fingerprint.Sampler
	champions     int // max champions per segment
	maxPerHook    int // max manifest ids retained per hook

	mu        sync.Mutex
	index     map[uint64][]int // hook -> manifest ids (newest last)
	nextMan   int
	versions  map[string]int
	container *container.Store
}

// NewSparseIndexing opens a sparse-indexing repository over an OSS store.
func NewSparseIndexing(store oss.Store, costs simclock.Costs, params chunker.Params, containerCap int) (*SparseIndexing, error) {
	cut, err := chunker.New("fastcdc", params)
	if err != nil {
		return nil, err
	}
	cs, err := container.NewStore(store, containerCap)
	if err != nil {
		return nil, err
	}
	return &SparseIndexing{
		store:         store,
		costs:         costs,
		cut:           cut,
		segmentChunks: 512,
		sampler:       fingerprint.NewSampler(32),
		champions:     8,
		maxPerHook:    4,
		index:         make(map[uint64][]int),
		nextMan:       1,
		versions:      make(map[string]int),
		container:     cs,
	}, nil
}

// Name implements System.
func (s *SparseIndexing) Name() string { return "sparse-indexing" }

func (s *SparseIndexing) manifestKey(n int) string {
	return fmt.Sprintf("sparseidx/manifests/%08d", n)
}

// Backup implements System.
func (s *SparseIndexing) Backup(fileID string, data []byte) (*Result, error) {
	acct := simclock.NewAccount()
	metered := oss.NewMetered(s.store, s.costs, acct)
	cs := s.container.View(metered)
	builder := container.NewBuilder(cs)

	res := &Result{FileID: fileID, LogicalBytes: int64(len(data)), Account: acct}
	s.mu.Lock()
	res.Version = s.versions[fileID]
	s.versions[fileID] = res.Version + 1
	s.mu.Unlock()

	manifestCache := make(map[int][]fpSize)

	stream := chunker.NewStream(data, s.cut, acct, s.costs)
	var seg []chunker.Chunk
	var segFPs []fingerprint.FP

	flushSegment := func() error {
		if len(seg) == 0 {
			return nil
		}
		// Hooks: sampled fingerprints of this segment.
		var hooks []uint64
		for _, fp := range segFPs {
			if s.sampler.Sample(fp) {
				hooks = append(hooks, fp.Uint64())
			}
		}
		if len(hooks) == 0 {
			hooks = []uint64{segFPs[0].Uint64()} // always at least one hook
		}

		// Champion selection: manifests sharing the most hooks.
		votes := make(map[int]int)
		s.mu.Lock()
		for _, h := range hooks {
			acct.ChargeCPU(simclock.PhaseIndexQuery, s.costs.IndexLookup)
			for _, man := range s.index[h] {
				votes[man]++
			}
		}
		s.mu.Unlock()
		type cand struct{ man, votes int }
		cands := make([]cand, 0, len(votes))
		for m, v := range votes {
			cands = append(cands, cand{m, v})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].votes != cands[j].votes {
				return cands[i].votes > cands[j].votes
			}
			return cands[i].man > cands[j].man // prefer newer manifests
		})
		if len(cands) > s.champions {
			cands = cands[:s.champions]
		}

		// Load champion manifests (one OSS read each) into a dedup set.
		dedup := make(map[fingerprint.FP]fpSize)
		for _, c := range cands {
			fps, ok := manifestCache[c.man]
			if !ok {
				b, err := metered.Get(s.manifestKey(c.man))
				if err != nil {
					continue
				}
				fps = decodeBlock(b)
				manifestCache[c.man] = fps
			}
			for _, e := range fps {
				dedup[e.fp] = e
				acct.ChargeCPU(simclock.PhaseIndexQuery, s.costs.IndexInsert)
			}
		}

		// Dedup the segment.
		var outFPs []fpSize
		for i, ch := range seg {
			fp := segFPs[i]
			acct.ChargeCPU(simclock.PhaseIndexQuery, s.costs.IndexLookup)
			if e, dup := dedup[fp]; dup {
				res.DuplicateBytes += int64(ch.Size())
				outFPs = append(outFPs, e)
			} else {
				id, err := builder.Add(fp, ch.Data)
				if err != nil {
					return err
				}
				e := fpSize{fp: fp, id: id, size: uint32(ch.Size())}
				res.StoredBytes += int64(ch.Size())
				dedup[fp] = e
				outFPs = append(outFPs, e)
			}
			res.NumChunks++
		}

		// Persist this segment's manifest and index its hooks.
		s.mu.Lock()
		man := s.nextMan
		s.nextMan++
		for _, h := range hooks {
			lst := append(s.index[h], man)
			if len(lst) > s.maxPerHook {
				lst = lst[len(lst)-s.maxPerHook:]
			}
			s.index[h] = lst
		}
		s.mu.Unlock()
		if err := metered.Put(s.manifestKey(man), encodeBlock(outFPs)); err != nil {
			return err
		}

		seg = seg[:0]
		segFPs = segFPs[:0]
		return nil
	}

	for {
		ch, ok := stream.Next()
		if !ok {
			break
		}
		fp := fingerprint.OfBytes(ch.Data)
		acct.ChargeCPUBytes(simclock.PhaseFingerprint, int64(ch.Size()), s.costs.SHA1PerByte)
		seg = append(seg, ch)
		segFPs = append(segFPs, fp)
		if len(seg) >= s.segmentChunks {
			if err := flushSegment(); err != nil {
				return nil, err
			}
		}
	}
	if err := flushSegment(); err != nil {
		return nil, err
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	res.Elapsed = finishElapsed(acct)
	return res, nil
}
