package baseline

import (
	"fmt"
	"sync"
	"time"

	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/container"
	"slimstore/internal/fingerprint"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

// Restic reproduces the architecture of the restic-over-OSSFS comparator
// in §VII-E: content-defined chunking with ~1 MiB chunks, pack files on
// object storage, and one repository-wide fingerprint index that every job
// must lock for lookups and updates.
//
// That single shared index is the property the paper measures: concurrent
// backup jobs serialise on it, capping aggregate backup throughput
// (~170 MB/s in the paper) regardless of job count, and restores serialise
// on index lookups for data locations (~102 MB/s). The serialised index
// work is charged to a shared virtual account; the scaling harness
// computes aggregate elapsed time as max(longest job, serialised index
// time), which yields the flat scaling curve of Fig 10.
type Restic struct {
	store oss.Store
	costs simclock.Costs
	cut   chunker.Cutter

	// IndexOpBackup and IndexOpRestore are the serialised per-chunk index
	// costs (lookup+update through the OSSFS-backed index in the paper's
	// setup). They bound aggregate throughput at chunkSize/op.
	IndexOpBackup  time.Duration
	IndexOpRestore time.Duration

	mu       sync.Mutex // THE lock: one index, all jobs
	index    map[fingerprint.FP]fpSize
	versions map[string]int
	lockAcct *simclock.Account // serialised index time across all jobs

	containers *container.Store
}

// NewRestic opens a restic-style repository over an OSS store. Chunk
// parameters default to restic's ~1 MiB average when params is zero.
func NewRestic(store oss.Store, costs simclock.Costs, params chunker.Params, packCap int) (*Restic, error) {
	if params == (chunker.Params{}) {
		params = chunker.ParamsForAvg(1 << 20)
	}
	cut, err := chunker.New("fastcdc", params)
	if err != nil {
		return nil, err
	}
	if packCap <= 0 {
		packCap = 16 << 20
	}
	cs, err := container.NewStore(store, packCap)
	if err != nil {
		return nil, err
	}
	return &Restic{
		store:          store,
		costs:          costs,
		cut:            cut,
		IndexOpBackup:  5800 * time.Microsecond,
		IndexOpRestore: 9800 * time.Microsecond,
		index:          make(map[fingerprint.FP]fpSize),
		versions:       make(map[string]int),
		lockAcct:       simclock.NewAccount(),
		containers:     cs,
	}, nil
}

// Name implements System.
func (r *Restic) Name() string { return "restic" }

// LockAccount exposes the serialised index account; the harness uses it to
// compute aggregate elapsed time across concurrent jobs.
func (r *Restic) LockAccount() *simclock.Account { return r.lockAcct }

func (r *Restic) snapshotKey(fileID string, version int) string {
	return fmt.Sprintf("restic/snapshots/%x/%08d", fileID, version)
}

// Backup implements System.
func (r *Restic) Backup(fileID string, data []byte) (*Result, error) {
	acct := simclock.NewAccount()
	metered := oss.NewMetered(r.store, r.costs, acct)
	cs := r.containers.View(metered)
	builder := container.NewBuilder(cs)

	res := &Result{FileID: fileID, LogicalBytes: int64(len(data)), Account: acct}
	r.mu.Lock()
	res.Version = r.versions[fileID]
	r.versions[fileID] = res.Version + 1
	r.mu.Unlock()

	var out []fpSize
	stream := chunker.NewStream(data, r.cut, acct, r.costs)
	for {
		ch, ok := stream.Next()
		if !ok {
			break
		}
		fp := fingerprint.Of(fingerprint.SHA256, ch.Data) // restic uses SHA-256
		acct.ChargeCPUBytes(simclock.PhaseFingerprint, int64(ch.Size()), r.costs.SHA256PerByte)

		// Serialised index section: every job contends on this lock, and
		// the per-op cost accrues on the shared account.
		r.mu.Lock()
		e, dup := r.index[fp]
		if !dup {
			// Store happens outside the lock in real restic; the index
			// registration is what serialises. Reserve the entry here.
			e = fpSize{fp: fp, size: uint32(ch.Size())}
		}
		r.lockAcct.ChargeCPU(simclock.PhaseIndexQuery, r.IndexOpBackup)
		acct.ChargeCPU(simclock.PhaseIndexQuery, r.costs.IndexLookup)
		r.mu.Unlock()

		if dup {
			res.DuplicateBytes += int64(ch.Size())
		} else {
			id, err := builder.Add(fp, ch.Data)
			if err != nil {
				return nil, err
			}
			e.id = id
			res.StoredBytes += int64(ch.Size())
			r.mu.Lock()
			r.index[fp] = e
			r.mu.Unlock()
		}
		out = append(out, e)
		res.NumChunks++
	}
	if err := builder.Flush(); err != nil {
		return nil, err
	}
	if err := metered.Put(r.snapshotKey(fileID, res.Version), encodeBlock(out)); err != nil {
		return nil, err
	}
	res.Elapsed = finishElapsed(acct)
	return res, nil
}

// RestoreResult reports one restic restore job.
type RestoreResult struct {
	Bytes   int64
	Cache   cache.Stats
	Account *simclock.Account
	Elapsed time.Duration
}

// Restore reads a snapshot back, serialising on the index for every chunk
// location lookup (the bottleneck the paper measures in Fig 10b), with a
// plain LRU pack cache.
func (r *Restic) Restore(fileID string, version int, emit func([]byte) error) (*RestoreResult, error) {
	acct := simclock.NewAccount()
	metered := oss.NewMetered(r.store, r.costs, acct)
	cs := r.containers.View(metered)

	b, err := r.store.Get(r.snapshotKey(fileID, version))
	if err != nil {
		return nil, fmt.Errorf("restic: restore %s v%d: %w", fileID, version, err)
	}
	fps := decodeBlock(b)
	seq := make([]cache.Request, 0, len(fps))
	for _, e := range fps {
		// Location lookup through the shared index.
		r.mu.Lock()
		r.lockAcct.ChargeCPU(simclock.PhaseIndexQuery, r.IndexOpRestore)
		r.mu.Unlock()
		seq = append(seq, cache.Request{FP: e.fp, Container: e.id, Size: e.size})
	}

	policy := cache.NewLRU(cache.Config{MemBytes: 256 << 20})
	stats, err := policy.Restore(seq, func(id container.ID) (*container.Container, error) {
		return cs.Read(id)
	}, func(data []byte) error {
		acct.ChargeCPUBytes(simclock.PhaseOther, int64(len(data)), r.costs.RestorePerByte)
		return emit(data)
	})
	if err != nil {
		return nil, err
	}
	return &RestoreResult{
		Bytes:   stats.LogicalBytes,
		Cache:   stats,
		Account: acct,
		Elapsed: acct.ElapsedSequential(),
	}, nil
}
