package baseline

import (
	"bytes"
	"math/rand"
	"testing"

	"slimstore/internal/cache"
	"slimstore/internal/chunker"
	"slimstore/internal/oss"
	"slimstore/internal/simclock"
)

func genData(seed int64, n int) []byte {
	r := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	r.Read(b)
	return b
}

// mutate overwrites a few ranges, keeping most content identical.
func mutate(data []byte, seed int64, changes int) []byte {
	r := rand.New(rand.NewSource(seed))
	out := append([]byte{}, data...)
	for i := 0; i < changes; i++ {
		off := r.Intn(len(out) - 256)
		r.Read(out[off : off+128])
	}
	return out
}

func params() chunker.Params { return chunker.ParamsForAvg(4 << 10) }

func systems(t *testing.T) []System {
	t.Helper()
	costs := simclock.DefaultCosts()
	silo, err := NewSiLO(oss.NewMem(), costs, params(), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	si, err := NewSparseIndexing(oss.NewMem(), costs, params(), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	har, err := NewHAR(oss.NewMem(), costs, params(), 256<<10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	restic, err := NewRestic(oss.NewMem(), costs, params(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return []System{silo, si, har, restic}
}

func TestBaselinesDedupIncrementalVersions(t *testing.T) {
	data := genData(1, 4<<20)
	v1 := mutate(data, 2, 10)
	for _, sys := range systems(t) {
		r0, err := sys.Backup("f", data)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if r0.Version != 0 || r0.LogicalBytes != int64(len(data)) {
			t.Fatalf("%s: v0 result %+v", sys.Name(), r0)
		}
		if r0.DuplicateBytes != 0 {
			t.Fatalf("%s: phantom duplicates on first version", sys.Name())
		}
		r1, err := sys.Backup("f", v1)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name(), err)
		}
		if r1.Version != 1 {
			t.Fatalf("%s: version = %d", sys.Name(), r1.Version)
		}
		if ratio := r1.DedupRatio(); ratio < 0.8 {
			t.Errorf("%s: dedup ratio %.3f on a lightly mutated version, want > 0.8",
				sys.Name(), ratio)
		}
		if r1.ThroughputMBps() <= 0 {
			t.Errorf("%s: non-positive throughput", sys.Name())
		}
		// Byte accounting: stored + duplicate == logical (all baselines
		// store whole chunks, no merging).
		if r1.StoredBytes+r1.DuplicateBytes != r1.LogicalBytes {
			t.Errorf("%s: byte accounting off: %d + %d != %d",
				sys.Name(), r1.StoredBytes, r1.DuplicateBytes, r1.LogicalBytes)
		}
	}
}

func TestHARRewriting(t *testing.T) {
	costs := simclock.DefaultCosts()
	store := oss.NewMem()
	har, err := NewHAR(store, costs, params(), 128<<10, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// v0: big file. v1: keeps thin slices → v0's containers turn sparse.
	v0 := genData(3, 2<<20)
	if _, err := har.BackupHAR("f", v0); err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	fresh := genData(4, 2<<20)
	for off := 0; off+(128<<10) <= len(fresh); off += 128 << 10 {
		v1.Write(fresh[off : off+(128<<10)])
		src := off % (len(v0) - (32 << 10))
		v1.Write(v0[src : src+(32<<10)])
	}
	r1, err := har.BackupHAR("f", v1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r1.SparseDetected == 0 {
		t.Fatal("HAR did not detect sparse containers")
	}
	// v2 repeats v1: the duplicates living in v1's sparse containers must
	// now be rewritten.
	r2, err := har.BackupHAR("f", v1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r2.RewrittenChunks == 0 {
		t.Fatalf("HAR rewrote nothing on the version after sparse detection: %+v", r2)
	}

	// The rewritten layout restores correctly through the OPT cache.
	seq, err := har.Sequence("f", 2)
	if err != nil {
		t.Fatal(err)
	}
	acct := simclock.NewAccount()
	var out bytes.Buffer
	policy := cache.NewOPT(cache.Config{MemBytes: 4 << 20, LAW: 512})
	if _, err := policy.Restore(seq, har.Fetcher(acct), func(d []byte) error {
		out.Write(d)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), v1.Bytes()) {
		t.Fatal("HAR restore corrupt")
	}
}

func TestResticRoundTripAndLockAccounting(t *testing.T) {
	costs := simclock.DefaultCosts()
	restic, err := NewRestic(oss.NewMem(), costs, chunker.Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	data := genData(5, 8<<20)
	r0, err := restic.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if r0.NumChunks == 0 {
		t.Fatal("no chunks")
	}
	// ~1 MiB chunks: 8 MiB should produce just a handful.
	if r0.NumChunks > 40 {
		t.Fatalf("chunk count %d too high for 1 MiB average", r0.NumChunks)
	}
	lockBefore := restic.LockAccount().CPUTime()
	if lockBefore == 0 {
		t.Fatal("serialised index time not charged")
	}

	var out bytes.Buffer
	rr, err := restic.Restore("f", 0, func(d []byte) error {
		out.Write(d)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), data) {
		t.Fatal("restic restore corrupt")
	}
	if rr.Bytes != int64(len(data)) {
		t.Fatalf("restore bytes = %d", rr.Bytes)
	}
	if restic.LockAccount().CPUTime() <= lockBefore {
		t.Fatal("restore did not charge the serialised index")
	}

	// Identical second backup dedups everything.
	r1, err := restic.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if r1.DedupRatio() < 0.99 {
		t.Fatalf("identical backup dedup ratio %.3f", r1.DedupRatio())
	}
}

func TestSiLOCrossVersionLocality(t *testing.T) {
	costs := simclock.DefaultCosts()
	silo, err := NewSiLO(oss.NewMem(), costs, params(), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	data := genData(6, 4<<20)
	if _, err := silo.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	// An identical backup must dedup nearly 100% through block loads.
	r, err := silo.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	if r.DedupRatio() < 0.99 {
		t.Fatalf("identical SiLO backup dedup ratio %.3f", r.DedupRatio())
	}
	if r.Account.IO().Reads == 0 {
		t.Fatal("SiLO never read a block from OSS")
	}
}

func TestSparseIndexingChampions(t *testing.T) {
	costs := simclock.DefaultCosts()
	si, err := NewSparseIndexing(oss.NewMem(), costs, params(), 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	data := genData(7, 4<<20)
	if _, err := si.Backup("f", data); err != nil {
		t.Fatal(err)
	}
	r, err := si.Backup("f", data)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling-based: near-exact but not guaranteed exact.
	if r.DedupRatio() < 0.95 {
		t.Fatalf("identical sparse-indexing backup dedup ratio %.3f", r.DedupRatio())
	}
}

func TestConcurrentResticBackups(t *testing.T) {
	costs := simclock.DefaultCosts()
	restic, err := NewRestic(oss.NewMem(), costs, chunker.Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			data := genData(int64(100+w), 4<<20)
			_, err := restic.Backup(string(rune('a'+w)), data)
			done <- err
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
