module slimstore

go 1.22
