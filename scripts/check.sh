#!/usr/bin/env sh
# Full verification gate: build, vet, the race-enabled test suite, and a
# short-budget fuzz smoke over the committed seed corpora plus a few
# seconds of fresh exploration per target.
# CI and pre-commit both run this; keep it the single source of truth.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...

# Project-invariant static analysis: lock ordering, determinism in
# simclock-charged packages, storage error discipline, context flow.
# Zero findings is the bar; see DESIGN.md §9 for suppression rules.
sh ./scripts/lint.sh

go test -race ./...

# Microbenchmark smoke: one iteration each, so broken benchmarks fail
# the gate without costing real measurement time.
BENCHTIME=1x sh ./scripts/bench.sh

# Restore I/O layer experiment smoke: the sweep is virtual-time and
# sub-second, so run it whole as a does-it-still-run check for the
# BENCH_restoreio.json artifact (discarded here; CI uploads the real one).
BENCH_RESTOREIO_OUT=/dev/null go run ./cmd/slimbench -exp restoreio >/dev/null

# Replicated-index experiment smoke: overhead and failover columns are
# deterministic and the sweep is sub-second, so run it whole as a
# does-it-still-run check for the BENCH_repl.json artifact.
BENCH_REPL_OUT=/dev/null go run ./cmd/slimbench -exp repl >/dev/null

# Erasure-coding experiment smoke: the durability/cost/latency frontier
# is deterministic and sub-second, so run it whole as a does-it-still-run
# check for the BENCH_ec.json artifact.
BENCH_EC_OUT=/dev/null go run ./cmd/slimbench -exp ec >/dev/null

# Ingest fast-path experiment smoke: the worker sweep, hand-off
# allocation counts, and streaming-residency row for BENCH_ingest.json.
BENCH_INGEST_OUT=/dev/null go run ./cmd/slimbench -exp ingest >/dev/null

# Restore fast-path experiment smoke: the serial-vs-pipelined twin sweep,
# dense range-restore control, and residency row for BENCH_restorefast.json.
BENCH_RESTOREFAST_OUT=/dev/null go run ./cmd/slimbench -exp restorefast >/dev/null

# Fuzz smoke: seed corpora always run as part of `go test`; the short
# -fuzz bursts below look for fresh counterexamples without blocking the
# gate for long. FUZZTIME=0s skips the bursts (corpora still ran above).
FUZZTIME="${FUZZTIME:-5s}"
if [ "$FUZZTIME" != "0s" ]; then
	go test -run=NONE -fuzz='^FuzzPartition$' -fuzztime "$FUZZTIME" ./internal/chunker/
	go test -run=NONE -fuzz='^FuzzStreamSkip$' -fuzztime "$FUZZTIME" ./internal/chunker/
	go test -run=NONE -fuzz='^FuzzRecipeRoundTrip$' -fuzztime "$FUZZTIME" ./internal/recipe/
	go test -run=NONE -fuzz='^FuzzRecipeDecode$' -fuzztime "$FUZZTIME" ./internal/recipe/
	go test -run=NONE -fuzz='^FuzzReplRecord$' -fuzztime "$FUZZTIME" ./internal/kvstore/
	go test -run=NONE -fuzz='^FuzzECDecode$' -fuzztime "$FUZZTIME" ./internal/ec/
fi
