#!/usr/bin/env sh
# Microbenchmark sweep over the hot primitives: chunker cutters,
# fingerprint hashing, and kvstore point/batch operations. BENCHTIME
# overrides the per-benchmark budget (default 1s); check.sh runs this
# with BENCHTIME=1x as a does-it-still-run smoke test.
#
# Whole-system numbers (throughput scaling, maintenance wall clock) live
# in cmd/slimbench, not here.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"

go test -run '^$' -bench '^BenchmarkCutters$' -benchtime "$BENCHTIME" ./internal/chunker/
go test -run '^$' -bench '^BenchmarkMetaFind$' -benchtime "$BENCHTIME" ./internal/container/
go test -run '^$' -bench '^BenchmarkFingerprint$' -benchtime "$BENCHTIME" ./internal/fingerprint/
go test -run '^$' -bench '^Benchmark(KVPut|KVGet|KVBatchPut|KVGetMulti)$' -benchtime "$BENCHTIME" ./internal/kvstore/
