#!/usr/bin/env sh
# Microbenchmark sweep over the hot primitives: chunker cutters,
# fingerprint hashing, kvstore point/batch operations, the restore cache
# policies, and the ingest/restore fast-path hand-offs. BENCHTIME overrides the per-benchmark budget
# (default 1s); check.sh runs this with BENCHTIME=1x as a
# does-it-still-run smoke test.
#
# After the sweep, results are diffed against the committed baseline in
# scripts/bench_baseline.txt (recorded on the development host). The
# comparison is informational — wall times are host-dependent — so it
# prints a delta table and never fails the run. Refresh the baseline
# with: BENCH_BASELINE_WRITE=1 sh scripts/bench.sh
#
# Whole-system numbers (throughput scaling, maintenance wall clock) live
# in cmd/slimbench, not here.
set -eu
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

run() {
	go test -run '^$' -bench "$1" -benchtime "$BENCHTIME" "$2" | tee -a "$OUT"
}

run '^BenchmarkCutters$' ./internal/chunker/
run '^BenchmarkMetaFind$' ./internal/container/
run '^BenchmarkFingerprint$' ./internal/fingerprint/
run '^Benchmark(KVPut|KVGet|KVBatchPut|KVGetMulti)$' ./internal/kvstore/
run '^BenchmarkRestorePolicies$' ./internal/cache/
run '^Benchmark(IngestHandoff|LegacyHandoff|HashChunksCrossover|RestoreHandoff|LegacyRestoreHandoff)$' ./internal/lnode/

# Baseline compare: ns/op against scripts/bench_baseline.txt, joined on
# benchmark name (GOMAXPROCS suffix stripped). Informational only.
BASE="scripts/bench_baseline.txt"
if [ "${BENCH_BASELINE_WRITE:-0}" = "1" ]; then
	grep '^Benchmark' "$OUT" > "$BASE"
	echo "wrote $BASE"
	exit 0
fi
if [ -f "$BASE" ]; then
	echo ""
	echo "== baseline compare (informational; baseline: $BASE) =="
	awk '
		/^Benchmark/ {
			name = $1; sub(/-[0-9]+$/, "", name)
			if (NR == FNR) { base[name] = $3; next }
			if (name in base && base[name] > 0)
				printf "%-44s %14.0f %14.0f %+8.1f%%\n", name, base[name], $3, ($3 - base[name]) / base[name] * 100
			else
				printf "%-44s %14s %14.0f    (new)\n", name, "-", $3
		}
		END {
			if (NR == FNR) print "(baseline has no Benchmark lines)"
		}
	' "$BASE" "$OUT" | { echo "benchmark                                       baseline ns/op  current ns/op    delta"; cat; }
fi
