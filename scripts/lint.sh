#!/usr/bin/env sh
# slimlint entry point: the project-invariant static analyzer (lock
# order, pool lifetime, goroutine leaks, determinism, error discipline,
# context flow). Exits nonzero on any finding; see DESIGN.md §9 for the
# invariants and the suppression syntax.
#
# Always prints the per-analyzer finding counts and wall times (on
# stderr, so -json stdout stays machine-readable), and warns when the
# whole-tree run exceeds the 60s lint-timing budget.
set -eu
cd "$(dirname "$0")/.."

usage() {
	cat <<'EOF'
Usage: ./scripts/lint.sh [options] [packages...]

  -json               machine-readable findings on stdout
  -only a,b           run only the named analyzers (lockorder, poolsafe,
                      goroutineleak, determinism, errdiscipline, ctxflow)
  -pkg dir            add one package directory to the lint set
  -fix=suppress       insert //slimlint:ignore stubs for current findings
  -h, -help           show this help

With no packages, lints the whole module (./...). Per-analyzer finding
counts and wall times print to stderr after every run; a note is emitted
if the whole-tree run exceeds the 60s budget (see DESIGN.md §9).
EOF
}

for a in "$@"; do
	case "$a" in
	-h | -help | --help)
		usage
		exit 0
		;;
	esac
done

START=$(date +%s)
STATUS=0
go run ./cmd/slimlint -stats "$@" || STATUS=$?
ELAPSED=$(($(date +%s) - START))
if [ $# -eq 0 ] && [ "$ELAPSED" -gt 60 ]; then
	echo "lint.sh: whole-tree slimlint took ${ELAPSED}s — over the 60s budget; profile with 'go run ./cmd/slimlint -stats ./...' before adding more summaries" >&2
fi
exit $STATUS
