#!/usr/bin/env sh
# slimlint entry point: the project-invariant static analyzer (lock
# order, determinism, error discipline, context flow). Exits nonzero on
# any finding; see DESIGN.md §9 for the invariants and the suppression
# syntax.
#
# Usage:
#   ./scripts/lint.sh                  # lint the whole module, human output
#   ./scripts/lint.sh -json            # machine-readable findings on stdout
#   ./scripts/lint.sh ./internal/oss   # lint specific packages
set -eu
cd "$(dirname "$0")/.."

JSON=""
if [ "${1:-}" = "-json" ]; then
	JSON="-json"
	shift
fi

exec go run ./cmd/slimlint $JSON "$@"
