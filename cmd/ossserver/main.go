// Command ossserver runs a standalone object-store server speaking the
// S3-like dialect of internal/oss, so multiple slimstore processes can
// share one storage layer (the multi-L-node deployment of the paper's
// Fig 1).
//
// Usage:
//
//	ossserver -addr :9000 -dir /var/lib/slimstore-oss
//	ossserver -addr :9000 -mem        # volatile, for testing
//
// Point clients at it with: slimstore -repo http://host:9000 ...
package main

import (
	"flag"
	"log"
	"net/http"

	"slimstore/internal/oss"
)

func main() {
	var (
		addr = flag.String("addr", ":9000", "listen address")
		dir  = flag.String("dir", "./ossdata", "storage directory")
		mem  = flag.Bool("mem", false, "keep objects in memory only")
	)
	flag.Parse()

	var store oss.Store
	if *mem {
		store = oss.NewMem()
		log.Printf("ossserver: in-memory store")
	} else {
		s, err := oss.NewDisk(*dir)
		if err != nil {
			log.Fatalf("ossserver: %v", err)
		}
		store = s
		log.Printf("ossserver: serving %s", *dir)
	}
	log.Printf("ossserver: listening on %s", *addr)
	if err := http.ListenAndServe(*addr, oss.NewServer(store)); err != nil {
		log.Fatalf("ossserver: %v", err)
	}
}
