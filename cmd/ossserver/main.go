// Command ossserver runs a standalone object-store server speaking the
// S3-like dialect of internal/oss, so multiple slimstore processes can
// share one storage layer (the multi-L-node deployment of the paper's
// Fig 1).
//
// Usage:
//
//	ossserver -addr :9000 -dir /var/lib/slimstore-oss
//	ossserver -addr :9000 -mem        # volatile, for testing
//
// Point clients at it with: slimstore -repo http://host:9000 ...
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"slimstore/internal/oss"
)

func main() {
	var (
		addr     = flag.String("addr", ":9000", "listen address")
		dir      = flag.String("dir", "./ossdata", "storage directory")
		mem      = flag.Bool("mem", false, "keep objects in memory only")
		maxBytes = flag.Int64("maxobject", oss.DefaultMaxObjectBytes, "maximum PUT body size in bytes")
	)
	flag.Parse()

	var store oss.Store
	if *mem {
		store = oss.NewMem()
		log.Printf("ossserver: in-memory store")
	} else {
		s, err := oss.NewDisk(*dir)
		if err != nil {
			log.Fatalf("ossserver: %v", err)
		}
		store = s
		log.Printf("ossserver: serving %s", *dir)
	}
	handler := oss.NewServer(store)
	handler.SetMaxObjectBytes(*maxBytes)
	// Generous read/write timeouts accommodate multi-MiB container
	// transfers on slow links while still reaping dead connections; the
	// header timeout bounds slow-loris clients.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       5 * time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("ossserver: listening on %s (max object %d bytes)", *addr, *maxBytes)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("ossserver: %v", err)
	}
}
