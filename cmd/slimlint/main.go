// Command slimlint runs the project-invariant static analyzers over the
// module: lock ordering (whole-program, call-graph-aware), sync.Pool
// lifetime safety, goroutine join/stop edges, determinism in
// simclock-charged packages, error discipline at the storage boundary,
// and context plumbing. It is part of the verify gate (scripts/check.sh)
// — a nonzero exit means the tree violates an invariant the system's
// correctness depends on.
//
// Usage:
//
//	slimlint [-json] [-stats] [-only a,b] [-pkg dir] [-fix=suppress] [packages...]
//
// Packages are directories or `dir/...` patterns relative to the working
// directory; the default is ./... (every package in the module, testdata
// excluded — fixture packages are linted by naming them explicitly).
// -pkg dir is shorthand for a single positional directory; -only
// restricts the run to a comma-separated subset of analyzers (their
// suppressions stay untouched — skipping an analyzer must not flag its
// directives as stale).
//
// Exit codes: 0 clean, 1 findings, 2 load/usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"slimstore/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (machine-readable, CI artifact)")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall time to stderr")
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	pkgDir := flag.String("pkg", "", "single package directory to lint (shorthand for one positional pattern)")
	fix := flag.String("fix", "", `"suppress" inserts //slimlint:ignore stubs above each finding for triage`)
	flag.Parse()

	patterns := flag.Args()
	if *pkgDir != "" {
		patterns = append(patterns, *pkgDir)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	var selected []string
	if *only != "" {
		known := map[string]bool{}
		for _, name := range lint.AnalyzerNames() {
			known[name] = true
		}
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if !known[name] {
				fatal(fmt.Errorf("slimlint: unknown analyzer %q in -only (have: %s)",
					name, strings.Join(lint.AnalyzerNames(), ", ")))
			}
			selected = append(selected, name)
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("slimlint: no packages matched %v", patterns))
	}
	findings, runStats := lint.RunSelected(pkgs, selected)

	switch *fix {
	case "":
	case "suppress":
		edited, err := lint.InsertSuppressions(loader.ModuleDir, findings)
		if err != nil {
			fatal(err)
		}
		for rel, content := range edited {
			if err := os.WriteFile(loader.ModuleDir+"/"+rel, content, 0o644); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "slimlint: stubbed suppressions in %s (edit the TODO reasons)\n", rel)
		}
		return
	default:
		fatal(fmt.Errorf("slimlint: unknown -fix mode %q (only \"suppress\")", *fix))
	}

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		lint.WriteHuman(os.Stdout, findings)
	}
	if *stats {
		lint.WriteStats(os.Stderr, runStats)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
