// Command slimbench regenerates the paper's tables and figures.
//
// Usage:
//
//	slimbench -list
//	slimbench -exp fig5a [-scale small|medium|large]
//	slimbench -exp all -scale medium
//
// Each experiment prints the same rows/series the corresponding table or
// figure reports; see EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"slimstore/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment ID (e.g. fig5a, table2) or 'all'")
		scale = flag.String("scale", "small", "workload scale: small, medium, large")
		list  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	var s bench.Scale
	switch *scale {
	case "small":
		s = bench.SmallScale
	case "medium":
		s = bench.MediumScale
	case "large":
		s = bench.LargeScale
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want small, medium, large)\n", *scale)
		os.Exit(2)
	}

	run := func(e bench.Experiment) {
		start := time.Now()
		if err := e.Run(context.Background(), os.Stdout, s); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *exp == "all" {
		for _, e := range bench.All() {
			run(e)
		}
		return
	}
	e, ok := bench.ByID(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; run with -list\n", *exp)
		os.Exit(2)
	}
	run(e)
}
