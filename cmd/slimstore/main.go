// Command slimstore is the backup/restore CLI over a SLIMSTORE repository.
//
// The repository lives on an object store selected with -repo:
//
//	-repo dir:/path/to/dir     local directory (default)
//	-repo http://host:port     remote object-store server (cmd/ossserver)
//
// Subcommands:
//
//	slimstore backup  -repo dir:/backups -file <local path> [-as <name>]
//	slimstore restore -repo dir:/backups -name <name> [-version N] -out <path>
//	slimstore snapshot -repo dir:/backups -dir <directory> -id <name>
//	slimstore restore-snapshot -repo dir:/backups -id <name> -out <directory>
//	slimstore snapshots -repo dir:/backups
//	slimstore verify  -repo dir:/backups -name <name> [-version N]
//	slimstore list    -repo dir:/backups
//	slimstore delete  -repo dir:/backups -name <name> -version N
//	slimstore gc      -repo dir:/backups
//	slimstore scrub   -repo dir:/backups
//	slimstore stats   -repo dir:/backups
//
// Any subcommand additionally accepts -pprof <path>: a CPU profile of
// the whole run is written there, for profiling maintenance commands
// (scrub, gc) against real repositories. -shards N and -replicas M
// select the global-index topology (DESIGN §11), and -ec-data K with
// -ec-parity M arm the erasure-coded container tier (DESIGN §12); every
// command against a repository must use the same values it was created
// with. -hash-workers, -pack-workers and -pack-budget tune the ingest
// fast path (DESIGN §13), and -legacy-ingest falls back to the old
// pipelined ingest for comparison; -verify-workers and -restore-window
// tune the restore fast path (DESIGN §14), and -legacy-restore falls
// back to the serial per-chunk restore emit. These affect performance
// only, not the repository layout.
package main

import (
	"context"
	"flag"
	"fmt"
	iofs "io/fs"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"

	"slimstore"
)

// Repository topology shared by every subcommand; set from the -shards
// and -replicas flags before openSystem runs. The values must match the
// repository's existing layout (they pick the on-store key prefixes).
var (
	globalShards   = 1
	globalReplicas = 1
	ecData         = 0
	ecParity       = 0
	hashWorkers    = 0
	packWorkers    = 0
	packBudget     = int64(0)
	legacyIngest   = false
	verifyWorkers  = 0
	restoreWindow  = 0
	legacyRestore  = false
)

func openSystem(repo string) (*slimstore.System, error) {
	cfg := slimstore.DefaultConfig()
	cfg.GlobalShards = globalShards
	cfg.GlobalReplicas = globalReplicas
	cfg.ECDataShards = ecData
	cfg.ECParityShards = ecParity
	if hashWorkers != 0 {
		cfg.HashWorkers = hashWorkers
	}
	if packWorkers != 0 {
		cfg.PackWorkers = packWorkers
	}
	if packBudget != 0 {
		cfg.PackBudgetBytes = packBudget
	}
	cfg.LegacyIngest = legacyIngest
	if verifyWorkers != 0 {
		cfg.VerifyWorkers = verifyWorkers
	}
	if restoreWindow != 0 {
		cfg.RestoreWindow = restoreWindow
	}
	cfg.LegacyRestore = legacyRestore
	switch {
	case strings.HasPrefix(repo, "dir:"):
		return slimstore.OpenDirectory(strings.TrimPrefix(repo, "dir:"), cfg)
	case strings.HasPrefix(repo, "http://"), strings.HasPrefix(repo, "https://"):
		return slimstore.OpenHTTP(repo, nil, cfg)
	case repo == "mem:":
		return slimstore.OpenMemory(cfg)
	default:
		return nil, fmt.Errorf("repo %q: want dir:<path>, http(s)://..., or mem:", repo)
	}
}

func fatalf(format string, args ...any) {
	stopProfile()
	fmt.Fprintf(os.Stderr, "slimstore: "+format+"\n", args...)
	os.Exit(1)
}

// stopProfile finalises the CPU profile started by -pprof. Both fatalf
// and the end of main run it, so the profile file is valid on every
// exit path that got as far as parsing flags.
var stopProfile = func() {}

// startPProf strips a leading-anywhere -pprof <path> (or -pprof=<path>)
// from args and starts a CPU profile there. It runs before the
// per-subcommand flag.Parse so the profile covers repository open and
// the whole command, not just the tail after parsing.
func startPProf(args []string) []string {
	path := ""
	rest := make([]string, 0, len(args))
	for i := 0; i < len(args); i++ {
		a := strings.TrimPrefix(strings.TrimPrefix(args[i], "-"), "-")
		if a == "pprof" && i+1 < len(args) {
			path = args[i+1]
			i++
			continue
		}
		if strings.HasPrefix(a, "pprof=") {
			path = strings.TrimPrefix(a, "pprof=")
			continue
		}
		rest = append(rest, args[i])
	}
	if path == "" {
		return rest
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("pprof: %v", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		fatalf("pprof: %v", err)
	}
	stopProfile = func() {
		pprof.StopCPUProfile()
		f.Close()
		stopProfile = func() {}
	}
	return rest
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: slimstore <backup|restore|verify|snapshot|restore-snapshot|snapshots|list|delete|gc|scrub|stats> [flags]")
		os.Exit(2)
	}
	cmd, args := os.Args[1], startPProf(os.Args[2:])
	defer stopProfile()
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	repo := fs.String("repo", "dir:./slimstore-repo", "repository location")
	fs.IntVar(&globalShards, "shards", 1, "global index shards (must match the repository layout)")
	fs.IntVar(&globalReplicas, "replicas", 1, "replicas per index shard (2f+1; must match the repository layout)")
	fs.IntVar(&ecData, "ec-data", 0, "erasure-coding data shards K (0 disables striping; must match the repository layout)")
	fs.IntVar(&ecParity, "ec-parity", 0, "erasure-coding parity shards M (with -ec-data; must match the repository layout)")
	fs.IntVar(&hashWorkers, "hash-workers", 0, "fingerprint worker-pool size (0 = default 4, negative = inline hashing)")
	fs.IntVar(&packWorkers, "pack-workers", 0, "background container-sealing workers (0 = default 4, negative = synchronous writes)")
	fs.Int64Var(&packBudget, "pack-budget", 0, "ingest buffer budget: max bytes of sealed containers in flight (0 = 3x pack-workers x container capacity)")
	fs.BoolVar(&legacyIngest, "legacy-ingest", false, "use the pre-fast-path pipelined ingest (debugging/comparison)")
	fs.IntVar(&verifyWorkers, "verify-workers", 0, "restore verification worker-pool size (0 = default 4, negative = verify on the pipeline)")
	fs.IntVar(&restoreWindow, "restore-window", 0, "restore pipeline window: max in-flight chunk slots (0 = default 256)")
	fs.BoolVar(&legacyRestore, "legacy-restore", false, "use the serial per-chunk restore emit (debugging/comparison)")

	switch cmd {
	case "backup":
		file := fs.String("file", "", "local file to back up")
		as := fs.String("as", "", "backup name (defaults to the file path)")
		fs.Parse(args)
		if *file == "" {
			fatalf("backup: -file is required")
		}
		name := *as
		if name == "" {
			name = *file
		}
		f, err := os.Open(*file)
		if err != nil {
			fatalf("%v", err)
		}
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		st, err := sys.BackupStream(name, f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		if _, _, err := sys.Optimize(st); err != nil {
			fatalf("optimize: %v", err)
		}
		fmt.Printf("backed up %q version %d: %d bytes, %.1f%% duplicates eliminated, %d chunks\n",
			name, st.Version, st.LogicalBytes, st.DedupRatio()*100, st.NumChunks)

	case "restore":
		name := fs.String("name", "", "backup name")
		version := fs.Int("version", -1, "version to restore (-1 = latest)")
		out := fs.String("out", "", "output path")
		fs.Parse(args)
		if *name == "" || *out == "" {
			fatalf("restore: -name and -out are required")
		}
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		v := *version
		if v < 0 {
			vs, err := sys.Versions(*name)
			if err != nil || len(vs) == 0 {
				fatalf("no versions of %q", *name)
			}
			v = vs[len(vs)-1]
		}
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		st, err := sys.Restore(*name, v, f)
		if err != nil {
			f.Close()
			fatalf("%v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("restored %q version %d: %d bytes (%d container reads, %d shared-cache hits, %d singleflight joins, %d ranged reads/%d spans)\n",
			*name, v, st.Bytes, st.Cache.ContainersRead,
			st.Cache.SharedHits, st.Cache.SharedJoins, st.Cache.RangedReads, st.Cache.RangedSpans)
		fmt.Printf("prefetch: %d slots dispatched, %d consumed, %d direct fetches, %d cancelled\n",
			st.Prefetch.Dispatched, st.Prefetch.Consumed, st.Prefetch.Direct, st.Prefetch.Cancelled)

	case "list":
		fs.Parse(args)
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		files, err := sys.Files()
		if err != nil {
			fatalf("%v", err)
		}
		for _, f := range files {
			vs, err := sys.Versions(f)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("%s: versions %v\n", f, vs)
		}

	case "delete":
		name := fs.String("name", "", "backup name")
		version := fs.Int("version", -1, "version to delete")
		fs.Parse(args)
		if *name == "" || *version < 0 {
			fatalf("delete: -name and -version are required")
		}
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		gc, err := sys.DeleteVersion(*name, *version)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("deleted %q version %d: %d containers collected, %d bytes reclaimed\n",
			*name, *version, gc.ContainersCollected, gc.BytesReclaimed)

	case "snapshot":
		dir := fs.String("dir", "", "directory to back up")
		id := fs.String("id", "", "snapshot ID (e.g. a timestamp)")
		lnodes := fs.Int("lnodes", 4, "L-node pool size")
		jobsN := fs.Int("jobs", 0, "concurrent backup jobs (0 = L-node count)")
		fs.Parse(args)
		if *dir == "" || *id == "" {
			fatalf("snapshot: -dir and -id are required")
		}
		files := map[string][]byte{}
		err := filepath.WalkDir(*dir, func(p string, d iofs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			rel, err := filepath.Rel(*dir, p)
			if err != nil {
				return err
			}
			b, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			files[filepath.ToSlash(rel)] = b
			return nil
		})
		if err != nil {
			fatalf("%v", err)
		}
		if len(files) == 0 {
			fatalf("snapshot: %s contains no files", *dir)
		}
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		sys.ScaleLNodes(*lnodes)
		snap, err := sys.BackupSnapshot(*id, files, *jobsN)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("snapshot %q: %d files, %d bytes\n", snap.ID, len(snap.Members), snap.TotalBytes)

	case "restore-snapshot":
		id := fs.String("id", "", "snapshot ID")
		outDir := fs.String("out", "", "output directory")
		lnodes := fs.Int("lnodes", 4, "L-node pool size (restore jobs run across them)")
		fs.Parse(args)
		if *id == "" || *outDir == "" {
			fatalf("restore-snapshot: -id and -out are required")
		}
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		snap, err := sys.SnapshotInfo(*id)
		if err != nil {
			fatalf("%v", err)
		}
		// One restore job per member, concurrent across the L-node pool.
		eng := sys.NewEngine(slimstore.EngineOptions{LNodes: *lnodes})
		var files []*os.File
		var restores []slimstore.Job
		for _, m := range snap.Members {
			p := filepath.Join(*outDir, filepath.FromSlash(m.FileID))
			if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
				fatalf("%v", err)
			}
			f, err := os.Create(p)
			if err != nil {
				fatalf("%v", err)
			}
			files = append(files, f)
			restores = append(restores, slimstore.Job{
				Kind: slimstore.JobRestore, FileID: m.FileID, Version: m.Version, Out: f,
			})
		}
		results := eng.Run(context.Background(), restores)
		eng.Close()
		for _, f := range files {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		for _, r := range results {
			if r.Err != nil && err == nil {
				err = fmt.Errorf("%s v%d: %w", r.Job.FileID, r.Job.Version, r.Err)
			}
		}
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("snapshot %q restored to %s\n", *id, *outDir)

	case "snapshots":
		fs.Parse(args)
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		ids, err := sys.Snapshots()
		if err != nil {
			fatalf("%v", err)
		}
		for _, id := range ids {
			snap, err := sys.SnapshotInfo(id)
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Printf("%s: %d files, %d bytes\n", snap.ID, len(snap.Members), snap.TotalBytes)
		}

	case "verify":
		name := fs.String("name", "", "backup name")
		version := fs.Int("version", -1, "version to verify (-1 = all)")
		jobsN := fs.Int("jobs", 4, "concurrent verify jobs")
		fs.Parse(args)
		if *name == "" {
			fatalf("verify: -name is required")
		}
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		var versions []int
		if *version >= 0 {
			versions = []int{*version}
		} else {
			versions, err = sys.Versions(*name)
			if err != nil {
				fatalf("%v", err)
			}
		}
		eng := sys.NewEngine(slimstore.EngineOptions{LNodes: *jobsN})
		var verifies []slimstore.Job
		for _, v := range versions {
			verifies = append(verifies, slimstore.Job{
				Kind: slimstore.JobVerify, FileID: *name, Version: v,
			})
		}
		results := eng.Run(context.Background(), verifies)
		eng.Close()
		for _, r := range results {
			if r.Err != nil {
				fatalf("verify %q v%d: %v", r.Job.FileID, r.Job.Version, r.Err)
			}
			fmt.Printf("verified %q version %d: %d bytes intact\n", r.Job.FileID, r.Job.Version, r.Restore.Bytes)
		}
		es := eng.Stats()
		fmt.Printf("verify summary: %d jobs, %d bytes verified (prefetch: %d dispatched, %d consumed, %d direct)\n",
			es.VerifyJobs, es.VerifiedBytes, es.PrefetchDispatched, es.PrefetchConsumed, es.PrefetchDirect)

	case "gc":
		fs.Parse(args)
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		audit, err := sys.Audit()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("audit: %d containers live, %d swept, %d bytes reclaimed\n",
			audit.ContainersMarked, audit.ContainersSwept, audit.BytesReclaimed)

	case "scrub":
		fs.Parse(args)
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		st, err := sys.Scrub()
		if err != nil {
			fatalf("scrub: %v", err)
		}
		fmt.Printf("scrub: %d containers scanned, %d chunks verified, %d corrupt, %d repaired, %d containers rebuilt\n",
			st.ContainersScanned, st.ChunksVerified, st.CorruptChunks, st.RepairedChunks, st.RebuiltContainers)
		if len(st.Quarantined) > 0 {
			fmt.Printf("quarantined: %v\n", st.Quarantined)
		}
		for _, fp := range st.Lost {
			fmt.Printf("LOST: chunk %s is unrecoverable; affected versions will fail to restore\n", fp.Short())
		}

	case "stats":
		fs.Parse(args)
		sys, err := openSystem(*repo)
		if err != nil {
			fatalf("%v", err)
		}
		u, err := sys.SpaceUsage()
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("containers: %d bytes\nrecipes:    %d bytes\nindexes:    %d bytes\ntotal:      %d bytes\n",
			u.ContainerBytes, u.RecipeBytes, u.IndexBytes, u.TotalBytes)

	default:
		fatalf("unknown command %q", cmd)
	}
}
