// Space reclamation (the paper's Fig 9 in miniature): old backup versions
// lose value over time, so SLIMSTORE transfers their data into new
// versions (reverse deduplication + sparse container compaction) and
// reclaims deleted versions with the mark-during-dedup / sweep-on-delete
// version collection.
//
//	go run ./examples/spacereclaim
package main

import (
	"fmt"
	"log"

	"slimstore"
	"slimstore/internal/workload"
)

func main() {
	sys, err := slimstore.OpenMemory(slimstore.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.New(workload.SDB(1, 8<<20))
	fileID := gen.FileIDs()[0]
	const versions = 12
	const retain = 5 // keep only the newest 5 versions

	fmt.Println("ver  total space   action")
	err = gen.VersionSeq(0, func(v int, data []byte) error {
		if v >= versions {
			return errStop
		}
		st, err := sys.Backup(fileID, data)
		if err != nil {
			return err
		}
		rd, scc, err := sys.Optimize(st)
		if err != nil {
			return err
		}
		action := fmt.Sprintf("backup v%d (%d dups reverse-deduped, %d chunks compacted)",
			v, rd.DuplicatesRemoved, scc.ChunksMoved)

		// Retention window: delete the version that fell out.
		if v >= retain {
			gc, err := sys.DeleteVersion(fileID, v-retain)
			if err != nil {
				return err
			}
			action += fmt.Sprintf("; deleted v%d (%d containers swept, %.1f MiB reclaimed)",
				v-retain, gc.ContainersCollected, float64(gc.BytesReclaimed)/(1<<20))
		}
		u, err := sys.SpaceUsage()
		if err != nil {
			return err
		}
		fmt.Printf("%3d  %8.1f MiB  %s\n", v, float64(u.TotalBytes)/(1<<20), action)
		return nil
	})
	if err != nil && err != errStop {
		log.Fatal(err)
	}

	// A final audit proves no garbage survived.
	audit, err := sys.Audit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naudit: %d containers live, %d orphans swept\n",
		audit.ContainersMarked, audit.ContainersSwept)

	vs, err := sys.Versions(fileID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retained versions: %v\n", vs)
}

var errStop = fmt.Errorf("stop")
