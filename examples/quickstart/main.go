// Quickstart: back up two versions of a file, inspect deduplication, and
// restore both versions byte-identically.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"slimstore"
)

func main() {
	// An in-memory deployment: one L-node, one G-node, storage simulated.
	sys, err := slimstore.OpenMemory(slimstore.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Version 0: 8 MiB of data.
	v0 := make([]byte, 8<<20)
	rand.New(rand.NewSource(1)).Read(v0)

	st0, err := sys.Backup("docs/report.db", v0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d: %d bytes in, %d stored (%.1f%% duplicates)\n",
		st0.Version, st0.LogicalBytes, st0.StoredBytes, st0.DedupRatio()*100)

	// Version 1: the same file with a small edit in the middle.
	v1 := append([]byte{}, v0...)
	copy(v1[4<<20:], []byte("-- edited --"))

	st1, err := sys.Backup("docs/report.db", v1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d: %d bytes in, %d stored (%.1f%% duplicates, %d skip hits)\n",
		st1.Version, st1.LogicalBytes, st1.StoredBytes, st1.DedupRatio()*100, st1.SkipHits)

	// The offline G-node pass: exact reverse deduplication + sparse
	// container compaction.
	if _, _, err := sys.Optimize(st1); err != nil {
		log.Fatal(err)
	}

	// Restore both versions and verify.
	for v, want := range [][]byte{v0, v1} {
		var buf bytes.Buffer
		rs, err := sys.Restore("docs/report.db", v, &buf)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			log.Fatalf("version %d corrupt!", v)
		}
		fmt.Printf("restored v%d: %d bytes, %d container reads, cache hits %d\n",
			v, rs.Bytes, rs.Cache.ContainersRead, rs.Cache.MemHits)
	}

	u, err := sys.SpaceUsage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("space: %d container bytes for %d logical bytes (%.2fx reduction)\n",
		u.ContainerBytes, st0.LogicalBytes+st1.LogicalBytes,
		float64(st0.LogicalBytes+st1.LogicalBytes)/float64(u.ContainerBytes))
}
