// Separated storage and computation over the network (the paper's Fig 1
// topology): an object-store server hosts the storage layer; independent
// processes — here, a backup agent and a recovery agent with no shared
// memory — each run their own stateless computing layer against it.
//
//	go run ./examples/cloudserver
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"

	"slimstore"
	"slimstore/internal/oss"
)

func main() {
	// The "cloud": an object-store server on a local port (in production
	// this is cmd/ossserver on a dedicated host, or real OSS/S3).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, oss.NewServer(oss.NewMem()))
	url := "http://" + ln.Addr().String()
	fmt.Printf("object store serving at %s\n", url)

	// The backup agent: one process, stateless L-nodes, talks to the
	// store over HTTP.
	agent, err := slimstore.OpenHTTP(url, nil, slimstore.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	data := make([]byte, 4<<20)
	rand.New(rand.NewSource(7)).Read(data)
	st, err := agent.Backup("prod/db.snapshot", data)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := agent.Optimize(st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent backed up %d bytes as version %d (%d chunks)\n",
		st.LogicalBytes, st.Version, st.NumChunks)

	// Second day: an incremental version.
	data2 := append([]byte{}, data...)
	copy(data2[2<<20:], []byte("day-two delta"))
	st2, err := agent.Backup("prod/db.snapshot", data2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent backed up version %d: %.1f%% deduplicated\n",
		st2.Version, st2.DedupRatio()*100)

	// Disaster: the agent host is gone. A fresh recovery process —
	// sharing nothing with the agent but the object store URL — restores
	// and verifies everything.
	recovery, err := slimstore.OpenHTTP(url, nil, slimstore.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	files, err := recovery.Files()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery agent found files: %v\n", files)
	for _, f := range files {
		versions, err := recovery.Versions(f)
		if err != nil {
			log.Fatal(err)
		}
		for _, v := range versions {
			if _, err := recovery.Verify(f, v); err != nil {
				log.Fatalf("verify %s v%d: %v", f, v, err)
			}
		}
		fmt.Printf("  %s: versions %v verified intact\n", f, versions)
	}
	var buf bytes.Buffer
	if _, err := recovery.Restore("prod/db.snapshot", 1, &buf); err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data2) {
		log.Fatal("restored bytes differ!")
	}
	fmt.Println("latest version restored byte-identically on the recovery host")
}
