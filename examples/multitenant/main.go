// Multi-tenant scalability (the paper's Fig 10 in miniature): many backup
// jobs run concurrently against one shared storage layer, distributed
// over an elastic pool of stateless L-nodes. Because L-nodes keep no
// state, adding nodes scales aggregate throughput linearly — the
// architectural property that restic's single shared index cannot match.
//
//	go run ./examples/multitenant
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"slimstore"
)

func main() {
	sys, err := slimstore.OpenMemory(slimstore.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sys.ScaleLNodes(4)
	fmt.Printf("computing layer: %d L-nodes\n", sys.LNodes())

	// 12 tenants, each backing up its own dataset concurrently.
	const tenants = 12
	datas := make([][]byte, tenants)
	for i := range datas {
		datas[i] = make([]byte, 2<<20)
		rand.New(rand.NewSource(int64(i))).Read(datas[i])
	}

	start := time.Now()
	var wg sync.WaitGroup
	stats := make([]*slimstore.BackupStats, tenants)
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = sys.Backup(fmt.Sprintf("tenant%02d/data.img", i), datas[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("tenant %d: %v", i, err)
		}
	}
	fmt.Printf("backed up %d tenants concurrently in %v wall time\n",
		tenants, time.Since(start).Round(time.Millisecond))

	var totalVirtual time.Duration
	var total int64
	for _, st := range stats {
		total += st.LogicalBytes
		if st.Elapsed > totalVirtual {
			totalVirtual = st.Elapsed
		}
	}
	fmt.Printf("aggregate: %.1f MB in, makespan %v (virtual) → %.0f MB/s aggregate\n",
		float64(total)/(1<<20), totalVirtual.Round(time.Microsecond),
		float64(total)/(1<<20)/totalVirtual.Seconds())

	// Concurrent restores, verifying integrity per tenant.
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var buf bytes.Buffer
			if _, err := sys.Restore(fmt.Sprintf("tenant%02d/data.img", i), 0, &buf); err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(buf.Bytes(), datas[i]) {
				errs[i] = fmt.Errorf("corrupt restore")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("tenant %d restore: %v", i, err)
		}
	}
	fmt.Println("all tenants restored byte-identically")
}
