// Database backup scenario (the paper's S-DB motivation): a set of
// database table files receives nightly full backups; incremental
// modifications between versions make deduplication highly effective, and
// history-aware chunk merging kicks in once regions prove stable.
//
//	go run ./examples/dbbackup
package main

import (
	"bytes"
	"fmt"
	"log"

	"slimstore"
	"slimstore/internal/workload"
)

func main() {
	cfg := slimstore.DefaultConfig()
	cfg.MergeThreshold = 4 // merge once a region survived 4 backups
	sys, err := slimstore.OpenMemory(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Three "tables" evolving over 10 nightly backups, simulated with the
	// paper's insert/update/delete model.
	gen := workload.New(workload.SDB(3, 4<<20))
	const nights = 10

	fmt.Println("night  table                 dedup%   stored     skips  superchunks")
	for i := 0; i < 3; i++ {
		fileID := gen.FileIDs()[i]
		night := 0
		err := gen.VersionSeq(i, func(v int, data []byte) error {
			if v >= nights {
				return errStop
			}
			st, err := sys.Backup(fileID, data)
			if err != nil {
				return err
			}
			// The G-node pass runs "offline" after each backup window.
			if _, _, err := sys.Optimize(st); err != nil {
				return err
			}
			fmt.Printf("%5d  %-20s  %5.1f%%  %8d  %6d  %d new / %d matched\n",
				night, fileID, st.DedupRatio()*100, st.StoredBytes,
				st.SkipHits, st.NewSuperchunks, st.SuperHits)
			night++
			return nil
		})
		if err != nil && err != errStop {
			log.Fatal(err)
		}
	}

	// Disaster recovery drill: restore the latest version of every table
	// and verify against the generator.
	fmt.Println("\nrecovery drill:")
	for i := 0; i < 3; i++ {
		fileID := gen.FileIDs()[i]
		want := gen.Version(i, nights-1)
		var buf bytes.Buffer
		rs, err := sys.Restore(fileID, nights-1, &buf)
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if !bytes.Equal(buf.Bytes(), want) {
			status = "CORRUPT"
		}
		fmt.Printf("  %-20s v%d: %d bytes, %d container reads ... %s\n",
			fileID, nights-1, rs.Bytes, rs.Cache.ContainersRead, status)
	}

	u, err := sys.SpaceUsage()
	if err != nil {
		log.Fatal(err)
	}
	logical := int64(3 * nights * 4 << 20)
	fmt.Printf("\nspace: %.1f MiB stored for %.1f MiB of logical backups (%.1fx reduction)\n",
		float64(u.TotalBytes)/(1<<20), float64(logical)/(1<<20),
		float64(logical)/float64(u.TotalBytes))
}

var errStop = fmt.Errorf("stop")
