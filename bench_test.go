// Benchmarks regenerating the paper's evaluation. One Benchmark per table
// and figure drives the corresponding experiment from internal/bench at a
// small scale (run cmd/slimbench with -scale medium for sharper curves),
// and the Ablation benchmarks sweep the design knobs DESIGN.md calls out.
//
// Experiment benchmarks report virtual-time metrics via ReportMetric;
// wall-clock ns/op measures the harness itself, not the modelled system.
package slimstore

import (
	"context"
	"fmt"
	"io"
	"testing"

	"slimstore/internal/bench"
	"slimstore/internal/chunker"
	"slimstore/internal/core"
	"slimstore/internal/gnode"
	"slimstore/internal/lnode"
	"slimstore/internal/oss"
	"slimstore/internal/workload"
)

// benchScale keeps the full suite runnable in minutes. cmd/slimbench
// exposes medium/large scales for sharper curves.
var benchScale = bench.Scale{Files: 2, FileBytes: 8 << 20, Versions: 6}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), io.Discard, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table and figure (paper §VII) ---

func BenchmarkTable1_Datasets(b *testing.B)              { runExperiment(b, "table1") }
func BenchmarkFig2_CDCBreakdown(b *testing.B)            { runExperiment(b, "fig2") }
func BenchmarkFig5a_SkipChunkingThroughput(b *testing.B) { runExperiment(b, "fig5a") }
func BenchmarkFig5b_SkipChunkingRatio(b *testing.B)      { runExperiment(b, "fig5b") }
func BenchmarkFig5c_SkipByDupRatio(b *testing.B)         { runExperiment(b, "fig5c") }
func BenchmarkFig5d_SkipBreakdown(b *testing.B)          { runExperiment(b, "fig5d") }
func BenchmarkFig6a_ChunkMergingThroughput(b *testing.B) { runExperiment(b, "fig6a") }
func BenchmarkFig6b_ChunkMergingRatio(b *testing.B)      { runExperiment(b, "fig6b") }
func BenchmarkFig7a_DedupVsBaselines(b *testing.B)       { runExperiment(b, "fig7a") }
func BenchmarkFig7b_DedupRatioVsBaselines(b *testing.B)  { runExperiment(b, "fig7b") }
func BenchmarkFig8ab_RestoreCaches(b *testing.B)         { runExperiment(b, "fig8ab") }
func BenchmarkFig8c_SCCvsHAR(b *testing.B)               { runExperiment(b, "fig8c") }
func BenchmarkFig8d_LAWPrefetch(b *testing.B)            { runExperiment(b, "fig8d") }
func BenchmarkTable2_PrefetchThreads(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkFig9a_SpaceCost(b *testing.B)              { runExperiment(b, "fig9a") }
func BenchmarkFig9b_OldVersionSpace(b *testing.B)        { runExperiment(b, "fig9b") }
func BenchmarkFig10a_BackupScaling(b *testing.B)         { runExperiment(b, "fig10a") }
func BenchmarkFig10b_RestoreScaling(b *testing.B)        { runExperiment(b, "fig10b") }
func BenchmarkFig10c_SpaceVsRestic(b *testing.B)         { runExperiment(b, "fig10c") }

// --- ablation benchmarks over the design knobs ---

// ablationCfg is the common baseline configuration of the ablations.
func ablationCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.ChunkParams = chunker.ParamsForAvg(4 << 10)
	cfg.ContainerCapacity = 512 << 10
	cfg.SegmentChunks = 256
	cfg.CacheMemBytes = 32 << 20
	cfg.CacheDiskBytes = 128 << 20
	cfg.LAWChunks = 1024
	return cfg
}

// ablationDedup backs up two versions of a mid-duplication file under cfg
// and reports version-1 throughput and dedup ratio as benchmark metrics.
func ablationDedup(b *testing.B, cfg core.Config) {
	b.Helper()
	gen := workload.New(workload.SDB(2, 2<<20))
	var tput, ratio float64
	for i := 0; i < b.N; i++ {
		repo, err := core.OpenRepo(oss.NewMem(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		ln := lnode.New(repo, "L0")
		if _, err := ln.Backup("f", gen.Version(1, 0)); err != nil {
			b.Fatal(err)
		}
		st, err := ln.Backup("f", gen.Version(1, 1))
		if err != nil {
			b.Fatal(err)
		}
		tput = st.ThroughputMBps()
		ratio = st.DedupRatio()
	}
	b.ReportMetric(tput, "virtualMB/s")
	b.ReportMetric(ratio*100, "dedup%")
}

func BenchmarkAblation_SamplingRatio(b *testing.B) {
	for _, r := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.SampleRatio = r
			ablationDedup(b, cfg)
		})
	}
}

func BenchmarkAblation_SegmentSize(b *testing.B) {
	for _, chunks := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("chunks=%d", chunks), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.SegmentChunks = chunks
			ablationDedup(b, cfg)
		})
	}
}

func BenchmarkAblation_ContainerSize(b *testing.B) {
	for _, capKB := range []int{128, 512, 4096} {
		b.Run(fmt.Sprintf("cap=%dKB", capKB), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.ContainerCapacity = capKB << 10
			ablationDedup(b, cfg)
		})
	}
}

func BenchmarkAblation_MergeThreshold(b *testing.B) {
	gen := workload.New(workload.SDB(2, 2<<20))
	for _, thr := range []int{2, 5, 10} {
		b.Run(fmt.Sprintf("threshold=%d", thr), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.MergeThreshold = thr
			var tput, ratio float64
			for i := 0; i < b.N; i++ {
				repo, err := core.OpenRepo(oss.NewMem(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				ln := lnode.New(repo, "L0")
				var st *lnode.BackupStats
				err = gen.VersionSeq(1, func(v int, data []byte) error {
					if v >= 6 {
						return errStop
					}
					st, err = ln.Backup("f", data)
					return err
				})
				if err != nil && err != errStop {
					b.Fatal(err)
				}
				tput = st.ThroughputMBps()
				ratio = st.DedupRatio()
			}
			b.ReportMetric(tput, "virtualMB/s")
			b.ReportMetric(ratio*100, "dedup%")
		})
	}
}

func BenchmarkAblation_SCCThreshold(b *testing.B) {
	gen := workload.New(workload.SDB(2, 2<<20))
	for _, util := range []float64{0.1, 0.3, 0.6} {
		b.Run(fmt.Sprintf("util=%.1f", util), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.SparseUtilization = util
			var amp float64
			for i := 0; i < b.N; i++ {
				repo, err := core.OpenRepo(oss.NewMem(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				ln := lnode.New(repo, "L0")
				gn := gnode.New(repo)
				var last *lnode.BackupStats
				err = gen.VersionSeq(0, func(v int, data []byte) error {
					if v >= 6 {
						return errStop
					}
					st, err := ln.Backup("f", data)
					if err != nil {
						return err
					}
					if _, err := gn.CompactSparse("f", v, st.SparseContainers); err != nil {
						return err
					}
					last = st
					return nil
				})
				if err != nil && err != errStop {
					b.Fatal(err)
				}
				rs, err := ln.Restore("f", last.Version, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				amp = rs.Cache.ReadAmplification()
			}
			b.ReportMetric(amp, "reads/100MB")
		})
	}
}

func BenchmarkAblation_RestoreCacheSize(b *testing.B) {
	gen := workload.New(workload.SDB(2, 2<<20))
	for _, memKB := range []int64{64, 256, 2048} {
		b.Run(fmt.Sprintf("mem=%dKB", memKB), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.CacheMemBytes = memKB << 10
			cfg.CacheDiskBytes = 0
			cfg.PrefetchThreads = 0
			var amp float64
			for i := 0; i < b.N; i++ {
				repo, err := core.OpenRepo(oss.NewMem(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				ln := lnode.New(repo, "L0")
				var last *lnode.BackupStats
				err = gen.VersionSeq(0, func(v int, data []byte) error {
					if v >= 6 {
						return errStop
					}
					st, berr := ln.Backup("f", data)
					last = st
					return berr
				})
				if err != nil && err != errStop {
					b.Fatal(err)
				}
				rs, err := ln.Restore("f", last.Version, io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				amp = rs.Cache.ReadAmplification()
			}
			b.ReportMetric(amp, "reads/100MB")
		})
	}
}

var errStop = fmt.Errorf("stop")

// BenchmarkEndToEnd measures the real (wall-clock) cost of the full
// pipeline: backup + optimize + restore of an 8 MiB version chain.
func BenchmarkEndToEnd(b *testing.B) {
	gen := workload.New(workload.SDB(1, 8<<20))
	v0 := gen.Version(0, 0)
	v1 := gen.Version(0, 1)
	b.SetBytes(int64(len(v0) + len(v1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := OpenMemory(DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, data := range [][]byte{v0, v1} {
			st, err := sys.Backup("f", data)
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := sys.Optimize(st); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := sys.Restore("f", 1, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_DedupCacheSize(b *testing.B) {
	gen := workload.New(workload.SDB(2, 4<<20))
	for _, segs := range []int{2, 8, 256} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			cfg := ablationCfg()
			cfg.SegmentChunks = 64 // many small segments stress the bound
			cfg.DedupCacheSegments = segs
			var tput, ratio float64
			for i := 0; i < b.N; i++ {
				repo, err := core.OpenRepo(oss.NewMem(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				ln := lnode.New(repo, "L0")
				if _, err := ln.Backup("f", gen.Version(1, 0)); err != nil {
					b.Fatal(err)
				}
				st, err := ln.Backup("f", gen.Version(1, 1))
				if err != nil {
					b.Fatal(err)
				}
				tput = st.ThroughputMBps()
				ratio = st.DedupRatio()
			}
			b.ReportMetric(tput, "virtualMB/s")
			b.ReportMetric(ratio*100, "dedup%")
		})
	}
}
